"""Sub-block splitting tests (Property 3)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ec.subblock import (
    DEFAULT_WORD_BYTES,
    join_block,
    split_block,
    split_counts,
    word_slice,
)


def test_split_counts_basic():
    assert split_counts(100, 0.0) == (0, 100)
    assert split_counts(100, 1.0) == (100, 0)
    assert split_counts(100, 0.25) == (25, 75)


def test_split_counts_validation():
    with pytest.raises(ValueError):
        split_counts(10, 1.5)
    with pytest.raises(ValueError):
        split_counts(10, -0.1)


@given(
    st.integers(min_value=1, max_value=64),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_split_join_roundtrip_property(n_words, p):
    rng = np.random.default_rng(42)
    block = rng.integers(0, 256, size=n_words * DEFAULT_WORD_BYTES, dtype=np.uint8)
    upper, lower = split_block(block, p)
    assert np.array_equal(join_block(upper, lower), block)
    # word alignment: each part's byte length divisible by the word size
    assert upper.nbytes % DEFAULT_WORD_BYTES == 0
    assert lower.nbytes % DEFAULT_WORD_BYTES == 0


def test_split_returns_views():
    block = np.arange(64, dtype=np.uint8)
    upper, lower = split_block(block, 0.5)
    assert upper.base is block and lower.base is block


def test_split_unaligned_rejected():
    with pytest.raises(ValueError):
        split_block(np.zeros(13, dtype=np.uint8), 0.5)


def test_join_dtype_mismatch():
    with pytest.raises(ValueError):
        join_block(np.zeros(8, dtype=np.uint8), np.zeros(8, dtype=np.uint16))


def test_word_slice_partition_exact():
    """Adjacent ranges sharing a boundary fraction partition the buffer."""
    block = np.arange(80, dtype=np.uint8)
    for p in (0.0, 0.1, 1 / 3, 0.5, 0.77, 1.0):
        a = word_slice(block, 0.0, p)
        b = word_slice(block, p, 1.0)
        assert np.array_equal(np.concatenate([a, b]), block)


def test_word_slice_clamps_and_validates():
    block = np.arange(16, dtype=np.uint8)
    assert word_slice(block, -0.5, 2.0).size == 16
    with pytest.raises(ValueError):
        word_slice(block, 0.8, 0.2)
    with pytest.raises(ValueError):
        word_slice(np.zeros(9, dtype=np.uint8), 0, 1)


def test_word_slice_uint16_buffers():
    block = np.arange(32, dtype=np.uint16)  # 64 bytes = 8 words
    half = word_slice(block, 0.0, 0.5)
    assert half.size == 16
    assert half.dtype == np.uint16
