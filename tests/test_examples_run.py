"""Every shipped example must run cleanly end to end (subprocess smoke)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 7
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script} produced no output"
