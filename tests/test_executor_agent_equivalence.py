"""The centralized executor and the distributed agents must agree exactly.

Both interpret the same plan ops; divergence between them would mean the
storage system repairs different bytes than the verified executor — the
worst possible silent bug.  This fuzzes plans across schemes and checks
byte equality of every output and scratch artifact that both sides produce.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.stripe import block_name
from repro.repair.centralized import plan_centralized
from repro.repair.executor import PlanExecutor, Workspace
from repro.repair.hybrid import plan_hybrid
from repro.repair.independent import plan_independent
from repro.repair.rackaware import plan_rack_aware_hybrid
from repro.system.agent import Agent, run_plan_ops
from repro.system.bus import DataBus
from tests.conftest import make_repair_ctx

PLANNERS = [plan_centralized, plan_independent, plan_hybrid, plan_rack_aware_hybrid]


def run_both(ctx, plan, seed):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(ctx.code.k, 256), dtype=np.uint8)
    full = ctx.code.encode_stripe(data)

    # path 1: centralized executor
    ws = Workspace()
    ws.load_stripe(ctx.stripe, full)
    for b in ctx.failed_blocks:
        ws.drop_node(ctx.stripe.placement[b])
    PlanExecutor(ws).execute(plan)

    # path 2: distributed agents
    agents = {i: Agent(i) for i in ctx.cluster.node_ids()}
    dead = {ctx.stripe.placement[b] for b in ctx.failed_blocks}
    for idx, node in enumerate(ctx.stripe.placement):
        if node not in dead:
            agents[node].store_block(block_name(ctx.stripe.stripe_id, idx), full[idx])
    bus = DataBus(rack_of={i: ctx.cluster[i].rack for i in ctx.cluster.node_ids()})
    run_plan_ops(plan.ops, agents, bus)

    return full, ws, agents, bus


@pytest.mark.parametrize("planner", PLANNERS)
def test_outputs_identical(planner):
    ctx = make_repair_ctx(k=6, m=3, f=2, rack_size=3, cross=30.0)
    plan = planner(ctx)
    full, ws, agents, bus = run_both(ctx, plan, seed=1)
    for fb, (node, name) in plan.outputs.items():
        from_executor = ws.get(node, name)
        from_agents = agents[node].scratch[name]
        assert np.array_equal(from_executor, from_agents)
        assert np.array_equal(from_executor, full[fb])


def test_bus_traffic_matches_executor_accounting():
    ctx = make_repair_ctx(k=5, m=2, f=2)
    plan = plan_hybrid(ctx)
    rng = np.random.default_rng(2)
    data = rng.integers(0, 256, size=(ctx.code.k, 512), dtype=np.uint8)
    full = ctx.code.encode_stripe(data)
    ws = Workspace()
    ws.load_stripe(ctx.stripe, full)
    for b in ctx.failed_blocks:
        ws.drop_node(ctx.stripe.placement[b])
    report = PlanExecutor(ws).execute(plan)

    agents = {i: Agent(i) for i in ctx.cluster.node_ids()}
    dead = {ctx.stripe.placement[b] for b in ctx.failed_blocks}
    for idx, node in enumerate(ctx.stripe.placement):
        if node not in dead:
            agents[node].store_block(block_name(ctx.stripe.stripe_id, idx), full[idx])
    bus = DataBus()
    run_plan_ops(plan.ops, agents, bus)
    assert bus.total_bytes() == pytest.approx(report.transfer_mb_equiv * 2**20)


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_equivalence_property(k, m, seed):
    rng = np.random.default_rng(seed)
    f = int(rng.integers(1, m + 1))
    n = k + m + f
    ups = rng.uniform(20, 200, size=n).tolist()
    ctx = make_repair_ctx(k=k, m=m, f=f, uplinks=ups)
    plan = plan_hybrid(ctx)
    full, ws, agents, _ = run_both(ctx, plan, seed=seed)
    for fb, (node, name) in plan.outputs.items():
        assert np.array_equal(ws.get(node, name), agents[node].scratch[name])
