"""Tests for the foreground-impact and LRC-comparison experiment harnesses."""

import pytest

from repro.experiments import exp_foreground, exp_lrc


def test_foreground_rows_structure():
    rows = exp_foreground.run(seeds=(2023,), k=8, m=4, f=2, n_reads=8)
    assert [r["scheme"] for r in rows] == ["cr", "ir", "hmbr", "hmbr-w0.25"]
    for r in rows:
        assert r["repair_mixed_s"] >= r["repair_solo_s"] - 1e-9
        assert r["read_stretch_x"] >= 1.0 - 1e-9
        assert r["repair_slowdown_x"] >= 1.0 - 1e-9
    by = {r["scheme"]: r for r in rows}
    # weighted throttling must not stretch reads more than full-rate HMBR
    assert by["hmbr-w0.25"]["read_stretch_x"] <= by["hmbr"]["read_stretch_x"] + 1e-9


def test_foreground_hmbr_shortest_interference_window():
    rows = exp_foreground.run(seeds=(2023, 2024), k=16, m=8, f=4, n_reads=16)
    by = {r["scheme"]: r for r in rows}
    # HMBR finishes its repair first even while competing with reads, so its
    # interference *window* is the shortest (the intensity can be higher —
    # that is the documented trade-off, not asserted here).
    assert by["hmbr"]["repair_mixed_s"] <= by["cr"]["repair_mixed_s"] + 1e-9
    assert by["hmbr"]["repair_mixed_s"] <= by["ir"]["repair_mixed_s"] + 1e-9


def test_lrc_rows_structure():
    # matched fault tolerance: RS(8,3) and LRC(8,2,2) both survive 3 erasures
    rows = exp_lrc.run(
        configs=[("RS(8,3)+HMBR", "rs", (8, 3)), ("LRC(8,2,2)", "lrc", (8, 2, 2))]
    )
    rs_row = next(r for r in rows if r["config"].startswith("RS"))
    lrc_row = next(r for r in rows if r["config"].startswith("LRC"))
    # the structural trade: LRC stores more, reads fewer blocks per repair
    assert lrc_row["overhead_x"] > rs_row["overhead_x"]
    assert lrc_row["single_repair_blocks"] < rs_row["single_repair_blocks"]
    assert lrc_row["single_repair_s"] > 0 and rs_row["single_repair_s"] > 0


def test_slo_rows_structure():
    from repro.experiments import exp_slo

    rows = exp_slo.run(slos=[8.0], m=4, f=2, k_max=32, k_step=8, seeds=(2023,))
    by = {r["scheme"]: r for r in rows}
    assert set(by) == {"cr", "ir", "hmbr"}
    assert by["hmbr"]["max_k"] >= by["cr"]["max_k"]
    for r in rows:
        if r["max_k"]:
            assert r["repair_s"] <= 8.0 + 1e-9
