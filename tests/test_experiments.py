"""Experiment-harness smoke tests with reduced configurations.

These pin the *qualitative claims* of each paper experiment on small grids;
the full-size regenerations live in benchmarks/.
"""

import pytest

from repro.experiments import build_scenario, format_table, plan_for, transfer_time
from repro.experiments import exp1, exp2, exp3, exp4, exp5, exp6, table1


# ------------------------------------------------------------------ #
# scenario builder
# ------------------------------------------------------------------ #
def test_build_scenario_structure():
    sc = build_scenario(6, 3, 2, wld="WLD-4x", seed=7)
    assert len(sc.cluster) == 6 + 3 + 2
    assert sc.ctx.f == 2
    assert sorted(sc.dead_nodes) == sorted(sc.ctx.failed_blocks)
    assert set(sc.ctx.new_nodes) == {9, 10}


def test_build_scenario_f_exceeding_m():
    with pytest.raises(ValueError):
        build_scenario(6, 3, 4)


def test_build_scenario_racks_and_caps():
    sc = build_scenario(8, 4, 2, rack_size=4, cross_factor=5.0)
    assert sc.cluster.rack_of(0) == 0 and sc.cluster.rack_of(4) == 1
    node = sc.cluster[0]
    assert node.cross_uplink == pytest.approx(node.uplink / 5.0)


def test_plan_for_unknown_scheme():
    sc = build_scenario(4, 2, 1)
    with pytest.raises(ValueError):
        plan_for(sc.ctx, "nope")


def test_format_table_renders():
    rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
    text = format_table(rows)
    assert "a" in text and "10" in text and "0.125" in text
    assert format_table([]) == "(no rows)"


# ------------------------------------------------------------------ #
# experiment harnesses (reduced configs)
# ------------------------------------------------------------------ #
def test_table1_rows_match_paper_shape():
    rows = table1.run()
    assert len(rows) == 6
    r64 = next(r for r in rows if r["(k,m)"] == "(64,8)")
    r6 = next(r for r in rows if r["(k,m)"] == "(6,3)")
    assert r64["R(N=5000)%"] > 25 > r6["R(N=5000)%"]


def test_exp1_hmbr_always_wins():
    rows = exp1.run(grid=[(6, 3, 2), (12, 4, 4)], wlds=["WLD-2x", "WLD-8x"], seeds=(2023,))
    for row in rows:
        assert row["hmbr"] <= min(row["cr"], row["ir"]) + 1e-9


def test_exp1_gap_flips_cr_vs_ir():
    """IR wins at 2x; CR closes the gap (or wins) at 8x for moderate k."""
    rows = exp1.run(grid=[(12, 4, 4)], wlds=["WLD-2x", "WLD-8x"], seeds=(2023, 2024))
    by_wld = {r["wld"]: r for r in rows}
    assert by_wld["WLD-2x"]["ir"] < by_wld["WLD-2x"]["cr"]
    ratio_2x = by_wld["WLD-2x"]["ir"] / by_wld["WLD-2x"]["cr"]
    ratio_8x = by_wld["WLD-8x"]["ir"] / by_wld["WLD-8x"]["cr"]
    assert ratio_8x > ratio_2x  # IR deteriorates relative to CR as gap widens


def test_exp2_time_grows_with_f():
    rows = exp2.run(cases={(16, 8): [2, 4, 8]}, seeds=(2023,))
    times = [r["hmbr"] for r in rows]
    assert times[0] < times[1] < times[2]
    for r in rows:
        assert r["hmbr"] <= min(r["cr"], r["ir"]) + 1e-9


def test_exp3_time_scales_with_block_size():
    rows = exp3.run(cases=[(16, 8, 8)], sizes_mb=[8.0, 32.0], seeds=(2023,))
    small, large = rows[0], rows[1]
    for scheme in ("cr", "ir", "hmbr"):
        assert large[scheme] == pytest.approx(4 * small[scheme], rel=0.05)


def test_exp4_rack_aware_helps_small_f():
    rows = exp4.run(cases={(16, 4): [2]}, rack_size=4, seeds=(2023,))
    assert rows[0]["rack_hmbr"] <= rows[0]["hmbr"] + 1e-9


def test_exp5_scheduler_mechanism():
    rows = exp5.run(cases=[(16, 8, 4)], seeds=(2023,), n_data_nodes=40, n_stripes=12)
    row = rows[0]
    assert row["max_center_load_enh"] <= row["max_center_load_base"]


def test_exp6_transfer_dominates():
    rows = exp6.run(cases=[(16, 4)], test_block_bytes=1 << 13)
    assert len(rows) == 3
    for r in rows:
        assert r["T_t_frac_%"] > 60.0
    hmbr = next(r for r in rows if r["scheme"] == "HMBR")
    cr = next(r for r in rows if r["scheme"] == "CR")
    ir = next(r for r in rows if r["scheme"] == "IR")
    assert hmbr["T_t_s"] <= min(cr["T_t_s"], ir["T_t_s"]) + 1e-9
