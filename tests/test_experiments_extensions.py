"""Tests for the extension experiment harnesses and the report generator."""

import pytest

from repro.experiments import exp_dynamic, exp_reliability
from repro.experiments.report import _md_table, _section


def test_exp_dynamic_rows():
    rows = exp_dynamic.run(cases=[(8, 4, 2)], seeds=(2023,))
    row = rows[0]
    assert row["hmbr_aware"] <= row["hmbr_stale"] + 1e-9
    assert 0.0 <= row["aware_p"] <= 1.0
    assert row["aware_gain_%"] >= -1e-9


def test_exp_dynamic_no_change_no_gain():
    """With no degradation, stale and aware splits coincide."""
    rows = exp_dynamic.run(
        cases=[(8, 4, 2)], seeds=(2023,), degrade_factor=1.0000001, change_time_s=1e9
    )
    row = rows[0]
    assert row["hmbr_aware"] == pytest.approx(row["hmbr_stale"], rel=1e-6)


def test_exp_reliability_rows():
    rows = exp_reliability.run(cases=[(8, 4)], node_mttf_hours=5_000.0)
    row = rows[0]
    assert row["hmbr_mttdl_yr"] > 0
    assert row["hmbr_vs_cr_x"] >= 1.0 - 1e-9
    assert row["hmbr_vs_ir_x"] >= 1.0 - 1e-9


def test_md_table_rendering():
    rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 0.25}]
    text = _md_table(rows)
    assert text.startswith("| a | b |")
    assert "| 3 | 0.25 |" in text
    assert _md_table([]) == "(no rows)"


def test_section_structure():
    text = _section("Title", "Claim.", [{"x": 1.0}], "Note.")
    assert text.startswith("## Title")
    assert "**Paper's claim.** Claim." in text
    assert "**Reproduction note.** Note." in text


def test_coordinator_rack_hmbr_scheme():
    from tests.test_system_coordinator import make_system, payload

    coord = make_system(n_data=16, n_spare=4, rack_size=4, seed=21, k=4, m=2)
    data = payload(30_000, seed=21)
    coord.write("f", data)
    victim = coord.layout.stripes[0].placement[0]  # a node that holds a block
    coord.crash_node(victim)
    report = coord.repair(scheme="rack-hmbr")
    assert report.blocks_recovered >= 1
    assert coord.read("f") == data
