"""Sweep-driver and export tests."""

import csv

import pytest

from repro.experiments.sweep import cartesian_sweep, rows_to_csv, rows_to_markdown


def fake_experiment(a, b, scale=1.0):
    return {"result": (a + b) * scale}


def fake_multi_row(a):
    return [{"i": i, "v": a * i} for i in range(2)]


def test_cartesian_sweep_covers_grid():
    rows = cartesian_sweep(fake_experiment, {"a": [1, 2], "b": [10, 20]}, fixed={"scale": 2.0})
    assert len(rows) == 4
    assert {(r["a"], r["b"]) for r in rows} == {(1, 10), (1, 20), (2, 10), (2, 20)}
    assert all(r["result"] == (r["a"] + r["b"]) * 2.0 for r in rows)


def test_cartesian_sweep_multi_row_functions():
    rows = cartesian_sweep(fake_multi_row, {"a": [3, 4]})
    assert len(rows) == 4
    assert all("i" in r and "a" in r for r in rows)


def test_cartesian_sweep_validation():
    with pytest.raises(ValueError):
        cartesian_sweep(fake_experiment, {})
    with pytest.raises(ValueError):
        cartesian_sweep(fake_experiment, {"a": [1]}, fixed={"a": 2})


def test_rows_to_csv_roundtrip(tmp_path):
    rows = [{"x": 1, "y": 2.5}, {"x": 2, "z": "extra"}]
    path = rows_to_csv(rows, tmp_path / "out.csv")
    with path.open() as fh:
        loaded = list(csv.DictReader(fh))
    assert loaded[0]["x"] == "1" and loaded[0]["y"] == "2.5"
    assert loaded[1]["z"] == "extra"
    with pytest.raises(ValueError):
        rows_to_csv([], tmp_path / "empty.csv")


def test_rows_to_markdown():
    text = rows_to_markdown([{"a": 1, "b": 0.5}])
    assert text.splitlines()[0] == "| a | b |"
    assert "| 1 | 0.500 |" in text
    assert rows_to_markdown([]) == "(no rows)"


def test_cli_csv_export(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "t1.csv"
    assert main(["table1", "--csv", str(out)]) == 0
    assert out.exists()
    with out.open() as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 6  # one per (k, m)


def test_sweep_with_real_harness():
    """Sweep the cross-rack factor of a small rack-aware comparison."""
    from repro.experiments.exp4 import run as run_exp4

    rows = cartesian_sweep(
        lambda cross_factor: run_exp4(
            cases={(16, 4): [2]}, rack_size=4, seeds=(2023,), cross_factor=cross_factor
        ),
        {"cross_factor": [2.0, 10.0]},
    )
    assert len(rows) == 2
    assert {r["cross_factor"] for r in rows} == {2.0, 10.0}
