"""Failure-storm integration: repeated failure/repair waves until spares run out."""

import numpy as np
import pytest

from repro.cluster.bandwidth import make_wld
from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.system.coordinator import Coordinator


def storm_system(n_data=20, n_spare=6, k=6, m=3, seed=0):
    ds = make_wld(n_data + n_spare, "WLD-4x", seed=seed)
    cluster = Cluster(
        [Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])) for i in range(n_data)]
    )
    coord = Coordinator(cluster, RSCode(k, m), block_bytes=2048, rng=seed)
    for j in range(n_spare):
        i = n_data + j
        coord.add_spare(Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])))
    return coord


def test_sequential_failure_waves():
    """Three waves of failures, each repaired before the next hits."""
    coord = storm_system(seed=51)
    rng = np.random.default_rng(51)
    data = rng.integers(0, 256, size=120_000, dtype=np.uint8).tobytes()
    coord.write("f", data)
    victims_per_wave = [[0, 1], [5], [9, 14]]
    for wave in victims_per_wave:
        for v in wave:
            if coord.cluster[v].alive:
                coord.crash_node(v)
        coord.repair(scheme="hmbr")
        assert coord.read("f") == data
        assert all(coord.scrub().values())
    # six nodes died in total; data survived every wave
    assert coord.stats()["nodes_dead"] == 5  # node could repeat; count actual
    assert coord.read("f") == data


def test_repaired_spare_can_fail_too():
    """A spare that received repaired blocks dies next — repair again."""
    coord = storm_system(seed=52)
    rng = np.random.default_rng(52)
    data = rng.integers(0, 256, size=60_000, dtype=np.uint8).tobytes()
    coord.write("f", data)
    victim = coord.layout.stripes[0].placement[0]
    coord.crash_node(victim)
    report1 = coord.repair()
    spare_used = report1.replacements[victim]
    # now the spare itself dies
    coord.crash_node(spare_used)
    report2 = coord.repair()
    assert spare_used in report2.replacements
    assert coord.read("f") == data
    assert all(coord.scrub().values())


def test_storm_exhausts_spares_cleanly():
    coord = storm_system(n_spare=1, seed=53)
    rng = np.random.default_rng(53)
    data = rng.integers(0, 256, size=60_000, dtype=np.uint8).tobytes()
    coord.write("f", data)
    held = sorted({n for s in coord.layout for n in s.placement})
    coord.crash_node(held[0])
    coord.repair()
    coord.crash_node(held[1])
    with pytest.raises(RuntimeError):
        coord.repair()
    # degraded but alive: reads still work within tolerance
    assert coord.read("f") == data


def test_beyond_tolerance_data_loss_detected():
    coord = storm_system(k=4, m=2, seed=54)
    rng = np.random.default_rng(54)
    data = rng.integers(0, 256, size=4 * 2048, dtype=np.uint8).tobytes()  # one stripe
    coord.write("f", data)
    stripe = coord.layout.stripes[0]
    for v in stripe.placement[:3]:  # 3 > m = 2: unrecoverable
        coord.crash_node(v)
    with pytest.raises(IOError):
        coord.read("f")
    with pytest.raises(ValueError):
        coord.repair()  # planner reports the stripe beyond tolerance