"""Parity between the reference and vectorized max-min allocators, plus a
seeded topology sweep pinning the fluid simulator against the §III-B1
static-share model on real repair plans."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.repair.centralized import plan_centralized
from repro.repair.hybrid import plan_hybrid
from repro.repair.independent import plan_independent
from repro.simnet.fluid import FluidSimulator, _Resource
from repro.simnet.static import StaticShareEvaluator
from tests.conftest import make_repair_ctx
from tests.seeds import DEFAULT_MASTER_SEED, seed_fanout


@st.composite
def allocation_instance(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    n_res = draw(st.integers(min_value=1, max_value=12))
    n_flows = draw(st.integers(min_value=1, max_value=15))
    res_keys = [f"r{i}" for i in range(n_res)]
    caps = {r: float(rng.uniform(5, 200)) for r in res_keys}
    flows = {}
    for i in range(n_flows):
        k = int(rng.integers(1, min(n_res, 4) + 1))
        picks = rng.choice(n_res, size=k, replace=True)  # multiplicity allowed
        flows[f"f{i}"] = [res_keys[j] for j in picks]
    return res_keys, caps, flows


@settings(max_examples=50, deadline=None)
@given(allocation_instance())
def test_vectorized_matches_reference(instance):
    res_keys, caps, flows = instance
    resources = {r: _Resource(caps[r]) for r in res_keys}
    reference = FluidSimulator._allocate(dict(flows), resources)

    tids = sorted(flows)
    alloc = FluidSimulator._VectorAllocator(tids, flows, res_keys)
    caps_arr = np.array([caps[r] for r in res_keys])
    vec = alloc.allocate(np.ones(len(tids), dtype=bool), caps_arr)
    for tid in tids:
        assert vec[alloc.flow_index[tid]] == pytest.approx(reference[tid], rel=1e-9)


@settings(max_examples=25, deadline=None)
@given(allocation_instance())
def test_allocation_is_feasible_and_maxmin(instance):
    """No resource over-subscribed; every flow is pinned by a saturated one."""
    res_keys, caps, flows = instance
    tids = sorted(flows)
    alloc = FluidSimulator._VectorAllocator(tids, flows, res_keys)
    caps_arr = np.array([caps[r] for r in res_keys])
    vec = alloc.allocate(np.ones(len(tids), dtype=bool), caps_arr)

    usage = {r: 0.0 for r in res_keys}
    for tid in tids:
        for r in flows[tid]:
            usage[r] += vec[alloc.flow_index[tid]]
    for r in res_keys:
        assert usage[r] <= caps[r] * (1 + 1e-9)
    # max-min: each flow touches at least one (nearly) saturated resource
    for tid in tids:
        saturated = any(usage[r] >= caps[r] * (1 - 1e-6) for r in flows[tid])
        assert saturated, tid


# --------------------------------------------------------------------- #
# weighted parity: random weights, multiplicities, and starved flows
# --------------------------------------------------------------------- #
@st.composite
def weighted_allocation_instance(draw):
    """Like :func:`allocation_instance`, plus per-flow weights and a chance
    of zero-capacity resources (flows crossing one are starved to rate 0)."""
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    n_res = draw(st.integers(min_value=1, max_value=12))
    n_flows = draw(st.integers(min_value=1, max_value=15))
    res_keys = [f"r{i}" for i in range(n_res)]
    caps = {
        r: 0.0 if rng.random() < 0.15 else float(rng.uniform(5, 200))
        for r in res_keys
    }
    flows = {}
    for i in range(n_flows):
        k = int(rng.integers(1, min(n_res, 4) + 1))
        picks = rng.choice(n_res, size=k, replace=True)  # multiplicity allowed
        flows[f"f{i}"] = [res_keys[j] for j in picks]
    weights = {f: float(rng.uniform(0.1, 8.0)) for f in flows}
    return res_keys, caps, flows, weights


@settings(max_examples=50, deadline=None)
@given(weighted_allocation_instance())
def test_vectorized_matches_reference_weighted(instance):
    """The vectorized allocator must reproduce weighted fair shares exactly,
    including flows starved by zero-capacity resources."""
    res_keys, caps, flows, weights = instance
    resources = {r: _Resource(caps[r]) for r in res_keys}
    reference = FluidSimulator._allocate(dict(flows), resources, weights)

    tids = sorted(flows)
    alloc = FluidSimulator._VectorAllocator(tids, flows, res_keys, weights)
    caps_arr = np.array([caps[r] for r in res_keys])
    vec = alloc.allocate(np.ones(len(tids), dtype=bool), caps_arr)
    for tid in tids:
        assert vec[alloc.flow_index[tid]] == pytest.approx(
            reference[tid], rel=1e-9, abs=1e-12
        )
    # starved flows: anything crossing a zero-capacity resource gets rate 0
    for tid in tids:
        if any(caps[r] == 0.0 for r in flows[tid]):
            assert reference[tid] == 0.0
            assert vec[alloc.flow_index[tid]] == 0.0


def test_weighted_shares_split_single_bottleneck_by_weight():
    """Weights 4:1 on one shared link -> 80/20 in both implementations."""
    flows = {"fg": ["r0"], "bg": ["r0"]}
    weights = {"fg": 4.0, "bg": 1.0}
    reference = FluidSimulator._allocate(
        dict(flows), {"r0": _Resource(100.0)}, weights
    )
    assert reference == {"fg": pytest.approx(80.0), "bg": pytest.approx(20.0)}
    alloc = FluidSimulator._VectorAllocator(["bg", "fg"], flows, ["r0"], weights)
    vec = alloc.allocate(np.ones(2, dtype=bool), np.array([100.0]))
    assert vec[alloc.flow_index["fg"]] == pytest.approx(80.0)
    assert vec[alloc.flow_index["bg"]] == pytest.approx(20.0)


# --------------------------------------------------------------------- #
# fluid vs static §III-B1 sweep
# --------------------------------------------------------------------- #

_SWEEP_SEEDS = seed_fanout(DEFAULT_MASTER_SEED, 50)


def _random_repair_ctx(seed, homogeneous=False):
    """A random (k, m, f) repair instance on a random-bandwidth topology."""
    rng = np.random.default_rng(seed)
    k = int(rng.integers(3, 9))
    m = int(rng.integers(2, 5))
    f = int(rng.integers(1, m + 1))
    n = k + m + f
    if homogeneous:
        ups = downs = None
    else:
        ups = rng.uniform(20, 200, size=n).tolist()
        downs = rng.uniform(20, 200, size=n).tolist()
    return make_repair_ctx(k=k, m=m, f=f, uplinks=ups, downlinks=downs)


@pytest.mark.parametrize("seed", _SWEEP_SEEDS, ids=[f"topo{s}" for s in _SWEEP_SEEDS])
def test_static_upper_bounds_fluid_across_topologies(seed):
    """50 seeded topologies: frozen §III-B1 shares never beat max-min.

    The static evaluator fixes every task's rate from global connection
    counts; the fluid simulator re-runs max-min allocation at each
    completion.  Rates can only improve as neighbors finish, so on every
    CR / IR / hybrid plan the static makespan must upper-bound the fluid one.
    """
    ctx = _random_repair_ctx(seed)
    static = StaticShareEvaluator(ctx.cluster)
    fluid = FluidSimulator(ctx.cluster)
    for plan in (plan_centralized(ctx), plan_independent(ctx), plan_hybrid(ctx)):
        t_static = static.run(plan.tasks).makespan
        t_fluid = fluid.run(plan.tasks).makespan
        assert t_static >= t_fluid - 1e-9, (
            f"topology seed {seed}: static {t_static} beat fluid {t_fluid}"
        )


@pytest.mark.parametrize("seed", _SWEEP_SEEDS[:10], ids=[f"topo{s}" for s in _SWEEP_SEEDS[:10]])
def test_static_matches_fluid_on_homogeneous_topologies(seed):
    """Uniform bandwidth: all sharers finish together, so the bound is tight."""
    ctx = _random_repair_ctx(seed, homogeneous=True)
    static = StaticShareEvaluator(ctx.cluster)
    fluid = FluidSimulator(ctx.cluster)
    for plan in (plan_centralized(ctx), plan_independent(ctx)):
        t_static = static.run(plan.tasks).makespan
        t_fluid = fluid.run(plan.tasks).makespan
        assert t_static == pytest.approx(t_fluid), f"topology seed {seed}"
