"""Parity between the reference and vectorized max-min allocators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.fluid import FluidSimulator, _Resource


@st.composite
def allocation_instance(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    n_res = draw(st.integers(min_value=1, max_value=12))
    n_flows = draw(st.integers(min_value=1, max_value=15))
    res_keys = [f"r{i}" for i in range(n_res)]
    caps = {r: float(rng.uniform(5, 200)) for r in res_keys}
    flows = {}
    for i in range(n_flows):
        k = int(rng.integers(1, min(n_res, 4) + 1))
        picks = rng.choice(n_res, size=k, replace=True)  # multiplicity allowed
        flows[f"f{i}"] = [res_keys[j] for j in picks]
    return res_keys, caps, flows


@settings(max_examples=50, deadline=None)
@given(allocation_instance())
def test_vectorized_matches_reference(instance):
    res_keys, caps, flows = instance
    resources = {r: _Resource(caps[r]) for r in res_keys}
    reference = FluidSimulator._allocate(dict(flows), resources)

    tids = sorted(flows)
    alloc = FluidSimulator._VectorAllocator(tids, flows, res_keys)
    caps_arr = np.array([caps[r] for r in res_keys])
    vec = alloc.allocate(np.ones(len(tids), dtype=bool), caps_arr)
    for tid in tids:
        assert vec[alloc.flow_index[tid]] == pytest.approx(reference[tid], rel=1e-9)


@settings(max_examples=25, deadline=None)
@given(allocation_instance())
def test_allocation_is_feasible_and_maxmin(instance):
    """No resource over-subscribed; every flow is pinned by a saturated one."""
    res_keys, caps, flows = instance
    tids = sorted(flows)
    alloc = FluidSimulator._VectorAllocator(tids, flows, res_keys)
    caps_arr = np.array([caps[r] for r in res_keys])
    vec = alloc.allocate(np.ones(len(tids), dtype=bool), caps_arr)

    usage = {r: 0.0 for r in res_keys}
    for tid in tids:
        for r in flows[tid]:
            usage[r] += vec[alloc.flow_index[tid]]
    for r in res_keys:
        assert usage[r] <= caps[r] * (1 + 1e-9)
    # max-min: each flow touches at least one (nearly) saturated resource
    for tid in tids:
        saturated = any(usage[r] >= caps[r] * (1 - 1e-6) for r in flows[tid])
        assert saturated, tid
