"""Property-based invariants of the fluid simulator (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.simnet.flows import Flow, PipelineFlow
from repro.simnet.fluid import FluidSimulator


@st.composite
def random_scenario(draw):
    n_nodes = draw(st.integers(min_value=3, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    nodes = [
        Node(i, float(rng.uniform(10, 200)), float(rng.uniform(10, 200)))
        for i in range(n_nodes)
    ]
    cluster = Cluster(nodes)
    n_flows = draw(st.integers(min_value=1, max_value=12))
    tasks = []
    prev_id = None
    for i in range(n_flows):
        a, b = rng.choice(n_nodes, size=2, replace=False)
        deps = ()
        if prev_id is not None and rng.random() < 0.3:
            deps = (prev_id,)
        tid = f"f{i}"
        tasks.append(Flow(tid, int(a), int(b), float(rng.uniform(0.5, 64)), deps=deps))
        prev_id = tid
    # occasionally add a pipeline
    if n_nodes >= 4 and draw(st.booleans()):
        path = rng.choice(n_nodes, size=4, replace=False)
        tasks.append(PipelineFlow("pipe", tuple(int(x) for x in path), 16.0))
    return cluster, tasks


@settings(max_examples=40, deadline=None)
@given(random_scenario())
def test_fluid_invariants(scenario):
    cluster, tasks = scenario
    res = FluidSimulator(cluster).run(tasks)
    by_id = {t.task_id: t for t in tasks}

    # 1. every task starts at/after its dependencies finish
    for t in tasks:
        for d in t.deps:
            assert res.start_times[t.task_id] >= res.finish_times[d] - 1e-9

    # 2. finish >= start, makespan = max finish
    for tid in by_id:
        assert res.finish_times[tid] >= res.start_times[tid] - 1e-9
    assert res.makespan == pytest.approx(max(res.finish_times.values()))

    # 3. no task beats its unconstrained bandwidth lower bound
    for t in tasks:
        min_link = min(
            min(cluster[a].uplink, cluster[b].downlink) for a, b in t.hops
        )
        lower = t.size_mb / min_link
        duration = res.finish_times[t.task_id] - res.start_times[t.task_id]
        assert duration >= lower - 1e-9

    # 4. traffic conservation
    total = sum(t.size_mb * len(t.hops) for t in tasks)
    assert sum(res.bytes_sent.values()) == pytest.approx(total)
    assert sum(res.bytes_received.values()) == pytest.approx(total)

    # 5. makespan bounded below by every node's volume / link rate
    for node, mb in res.bytes_sent.items():
        assert res.makespan >= mb / cluster[node].uplink - 1e-6
    for node, mb in res.bytes_received.items():
        assert res.makespan >= mb / cluster[node].downlink - 1e-6


@settings(max_examples=20, deadline=None)
@given(random_scenario(), st.integers(min_value=0, max_value=2**31 - 1))
def test_fluid_is_deterministic(scenario, _seed):
    cluster, tasks = scenario
    r1 = FluidSimulator(cluster).run(tasks)
    r2 = FluidSimulator(cluster).run(tasks)
    assert r1.makespan == r2.makespan
    assert r1.finish_times == r2.finish_times
