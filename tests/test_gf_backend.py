"""Twin-system differential suite for the pluggable GF kernel backends.

The backend contract (:mod:`repro.gf.backend`) promises that every
registered backend is **bit-exact** with the reference
:func:`repro.gf.matrix.gf_matmul` — backends move throughput, never bits.
This suite pins that promise three ways:

* every *available* backend against the reference, over random
  (k, m, f, pattern, block-size) geometries in GF(2^8) and GF(2^16),
  including odd-length tails, zero/one coefficients, empty planes, and
  single-column planes;
* every available backend against **each other** (the twin-system check:
  a shared bug in two backends can't hide behind a shared reference);
* the full repair path — healthy and after a fault storm widens the
  erasure pattern — and the chunked degraded-read path
  (:func:`repro.workload.pipeline.decode_chunked` with ``chunks > 1``),
  per backend.

Registry/selection semantics (override precedence, forced-but-unavailable
errors, capability filtering) are covered alongside, as is the native
tier's compiler-less fallback.
"""

import os

import numpy as np
import pytest

from repro.ec.rs import RSCode
from repro.gf import GF, gf_matmul
from repro.gf.backend import (
    ENV_VAR,
    BackendUnavailable,
    KernelBackend,
    NativeBackend,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    select_backend,
)
from repro.repair.batch import BatchRepairEngine, StripeBatchItem
from repro.workload.pipeline import decode_chunked

SEEDS = [int(s) for s in np.random.SeedSequence(909).generate_state(6)]

#: the tiers this host can actually run, per word size (isal rides along
#: automatically when a libisal is present).
BACKENDS_8 = available_backends(8)
BACKENDS_16 = available_backends(16)


# ------------------------------------------------------------------ #
# registry + selection semantics
# ------------------------------------------------------------------ #
def test_registry_contains_all_tiers_best_first():
    names = registered_backends()
    assert {"numpy", "native", "isal"} <= set(names)
    prios = [get_backend(n).priority for n in names]
    assert prios == sorted(prios, reverse=True)


def test_numpy_backend_always_available():
    assert "numpy" in BACKENDS_8
    assert "numpy" in BACKENDS_16


def test_unknown_backend_raises():
    with pytest.raises(BackendUnavailable, match="unknown"):
        get_backend("definitely-not-a-backend")
    with pytest.raises(BackendUnavailable):
        select_backend(8, override="definitely-not-a-backend")


def test_w4_falls_back_to_numpy():
    """Neither the native C kernels nor ISA-L cover GF(2^4)."""
    assert available_backends(4) == ["numpy"]
    assert select_backend(4).name == "numpy"


def test_incapable_override_raises():
    with pytest.raises(BackendUnavailable, match="does not support"):
        select_backend(4, override="native")


def test_env_var_override_wins(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "numpy")
    assert select_backend(8).name == "numpy"
    monkeypatch.setenv(ENV_VAR, "definitely-not-a-backend")
    with pytest.raises(BackendUnavailable):
        select_backend(8)
    monkeypatch.setenv(ENV_VAR, "")  # empty = unset = auto
    assert select_backend(8).name == available_backends(8)[0]


def test_argument_override_beats_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "definitely-not-a-backend")
    assert select_backend(8, override="numpy").name == "numpy"


def test_resolve_backend_accepts_name_instance_none(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    field = GF(8)
    auto = resolve_backend(None, field)
    assert auto.name == available_backends(8)[0]
    by_name = resolve_backend("numpy", field)
    assert by_name.name == "numpy"
    assert resolve_backend(by_name, field) is by_name
    with pytest.raises(TypeError):
        resolve_backend(42, field)
    # an instance that can't cover the field's word size is rejected
    with pytest.raises(BackendUnavailable, match="does not support"):
        resolve_backend(get_backend("native"), 4)


def test_register_backend_rejects_duplicates_and_anonymous():
    class Anon(KernelBackend):
        name = ""

        def capabilities(self, w):
            return False

        def plane_matmul(self, mat, plane, field):
            raise NotImplementedError

    with pytest.raises(ValueError):
        register_backend(Anon())
    with pytest.raises(ValueError):
        register_backend(get_backend("numpy"))  # name already taken


def test_native_fallback_without_compiler(monkeypatch, tmp_path):
    """No compiler + no cached build = unavailable, never an exception."""
    import repro.gf.backend.native as native_mod

    monkeypatch.setenv("REPRO_GF_NATIVE_CACHE", str(tmp_path / "empty"))
    monkeypatch.setattr(native_mod, "_find_compiler", lambda: None)
    nb = NativeBackend()  # fresh instance: the registered one may be probed
    assert nb.available() is False
    info = nb.build_info()
    assert info["available"] is False
    assert "compiler" in (info["error"] or "")
    with pytest.raises(RuntimeError, match="unavailable"):
        nb.plane_matmul(
            np.ones((1, 1), dtype=np.uint8), np.ones((1, 4), dtype=np.uint8), GF(8)
        )


def test_native_build_info_reports_cached_library():
    nb = get_backend("native")
    if not nb.available():
        pytest.skip("native backend unavailable on this host")
    info = nb.build_info()
    assert info["available"] is True
    assert info["path"] and os.path.exists(info["path"])
    assert info["error"] is None


# ------------------------------------------------------------------ #
# kernel differentials: every backend vs the reference and each other
# ------------------------------------------------------------------ #
def _random_case(rng, field):
    f = int(rng.integers(1, 6))
    k = int(rng.integers(1, 12))
    n = int(rng.integers(1, 5000))
    mat = rng.integers(0, field.size, size=(f, k)).astype(field.dtype)
    # force the special-cased coefficients into every sample
    mat.flat[rng.integers(0, mat.size)] = 0
    mat.flat[rng.integers(0, mat.size)] = 1
    plane = rng.integers(0, field.size, size=(k, n)).astype(field.dtype)
    return mat, plane


@pytest.mark.parametrize("w", [8, 16])
@pytest.mark.parametrize("seed", SEEDS)
def test_backends_match_reference_and_each_other(w, seed):
    field = GF(w)
    rng = np.random.default_rng(seed)
    backends = [get_backend(n) for n in available_backends(w)]
    for _ in range(4):
        mat, plane = _random_case(rng, field)
        ref = gf_matmul(mat, plane, field)
        outs = {b.name: b.plane_matmul(mat, plane, field) for b in backends}
        for name, got in outs.items():
            assert got.dtype == field.dtype
            assert np.array_equal(ref, got), f"w={w} backend={name} diverged"


@pytest.mark.parametrize("w", [8, 16])
@pytest.mark.parametrize("n", [0, 1, 2, 3, 31, 32, 33, 63, 64, 65, 1023])
def test_backend_odd_tails_and_empty_planes(w, n):
    """SIMD kernels process 32-element vectors; every tail length and the
    empty plane must round-trip exactly like the reference."""
    field = GF(w)
    rng = np.random.default_rng(n + w)
    mat = rng.integers(0, field.size, size=(3, 5)).astype(field.dtype)
    plane = rng.integers(0, field.size, size=(5, n)).astype(field.dtype)
    ref = gf_matmul(mat, plane, field) if n else np.zeros((3, 0), dtype=field.dtype)
    for name in available_backends(w):
        got = get_backend(name).plane_matmul(mat, plane, field)
        assert got.shape == (3, n)
        assert np.array_equal(ref, got), f"n={n} backend={name}"


@pytest.mark.parametrize("w", [8, 16])
def test_backend_zero_and_identity_matrices(w):
    field = GF(w)
    rng = np.random.default_rng(w)
    plane = rng.integers(0, field.size, size=(4, 777)).astype(field.dtype)
    zeros = np.zeros((2, 4), dtype=field.dtype)
    ident = np.eye(4, dtype=field.dtype)
    for name in available_backends(w):
        b = get_backend(name)
        assert not b.plane_matmul(zeros, plane, field).any()
        assert np.array_equal(b.plane_matmul(ident, plane, field), plane)


@pytest.mark.parametrize("w", [8, 16])
def test_backend_noncontiguous_plane(w):
    """Strided views (sharded column ranges) must decode identically."""
    field = GF(w)
    rng = np.random.default_rng(17 + w)
    mat = rng.integers(0, field.size, size=(2, 4)).astype(field.dtype)
    big = rng.integers(0, field.size, size=(4, 4000)).astype(field.dtype)
    view = big[:, 5:2501]
    ref = gf_matmul(mat, np.ascontiguousarray(view), field)
    for name in available_backends(w):
        assert np.array_equal(get_backend(name).plane_matmul(mat, view, field), ref)


@pytest.mark.parametrize("w", [8, 16])
def test_backend_shape_validation(w):
    field = GF(w)
    for name in available_backends(w):
        with pytest.raises(ValueError):
            get_backend(name).plane_matmul(
                np.zeros((2, 3), dtype=field.dtype),
                np.zeros((4, 5), dtype=field.dtype),
                field,
            )


# ------------------------------------------------------------------ #
# repair-path differentials: healthy and post-fault-storm
# ------------------------------------------------------------------ #
def _encode_batch(code, rng, stripes, ncols):
    field = code.field
    return [
        code.encode_stripe(
            rng.integers(0, field.size, size=(code.k, ncols)).astype(field.dtype)
        )
        for _ in range(stripes)
    ]


def _repair_outputs(code, full, lost, backend):
    surv = tuple(i for i in range(code.k + code.m) if i not in lost)[: code.k]
    items = [
        StripeBatchItem(
            stripe_id=s,
            survivors=surv,
            failed=tuple(lost),
            sources=[full[s][i] for i in surv],
        )
        for s in range(len(full))
    ]
    eng = BatchRepairEngine(code, backend=backend)
    res = eng.repair_items(items)
    return res.outputs


@pytest.mark.parametrize("w", [8, 16])
@pytest.mark.parametrize("seed", SEEDS[:3])
def test_repair_differential_healthy_and_storm(w, seed):
    """Random (k, m, f, pattern, block-size) repair, every backend.

    Each round repairs the same batch twice: first with an f-wide pattern
    (healthy regime), then after a 'storm' widens the pattern to the full
    erasure budget m — both against the encoded ground truth.
    """
    rng = np.random.default_rng(seed)
    field = GF(w)
    k = int(rng.integers(2, 8))
    m = int(rng.integers(2, 5))
    code = RSCode(k, m, field=field)
    ncols = int(rng.integers(100, 2100))
    full = _encode_batch(code, rng, stripes=int(rng.integers(1, 5)), ncols=ncols)
    f = int(rng.integers(1, m + 1))
    healthy = tuple(sorted(rng.choice(k + m, size=f, replace=False).tolist()))
    storm = tuple(sorted(rng.choice(k + m, size=m, replace=False).tolist()))
    for lost in (healthy, storm):
        per_backend = {}
        for name in available_backends(w):
            outs = _repair_outputs(code, full, lost, name)
            for s in range(len(full)):
                for b in lost:
                    assert np.array_equal(outs[s][b], full[s][b]), (
                        f"w={w} backend={name} stripe={s} block={b}"
                    )
            per_backend[name] = outs
        first = next(iter(per_backend.values()))
        for name, outs in per_backend.items():
            for s in first:
                for b in first[s]:
                    assert np.array_equal(outs[s][b], first[s][b]), name


@pytest.mark.parametrize("w", [8, 16])
@pytest.mark.parametrize("chunks", [2, 3, 7])
def test_decode_chunked_differential_across_backends(w, chunks):
    """Chunked degraded reads (chunks > 1) are bit-exact per backend."""
    rng = np.random.default_rng(23 + w + chunks)
    field = GF(w)
    code = RSCode(4, 3, field=field)
    ncols = 1001
    full = _encode_batch(code, rng, stripes=3, ncols=ncols)
    lost = (1, 5)
    surv = tuple(i for i in range(7) if i not in lost)[:4]
    stacked = np.stack([[full[s][i] for i in surv] for s in range(3)])
    ref = None
    for name in available_backends(w):
        eng = BatchRepairEngine(code, backend=name)
        out = decode_chunked(eng, surv, lost, stacked, chunks)
        for s in range(3):
            for j, b in enumerate(lost):
                assert np.array_equal(out[s, j], full[s][b]), f"{name} s={s} b={b}"
        if ref is None:
            ref = out
        else:
            assert np.array_equal(ref, out), name


def test_engine_reports_selected_backend(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    code = RSCode(4, 2)
    auto = BatchRepairEngine(code)
    assert auto.stats()["backend"] == available_backends(8)[0]
    pinned = BatchRepairEngine(code, backend="numpy")
    assert pinned.stats()["backend"] == "numpy"


def test_engine_honors_env_override(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "numpy")
    assert BatchRepairEngine(RSCode(4, 2)).stats()["backend"] == "numpy"
