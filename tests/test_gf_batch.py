"""Property/differential tests for the batched GF kernels.

Everything here checks one claim from `repro.gf.batch`'s contract: the
stacked kernels are *bit-exact* with the reference per-stripe matmul of
`repro.gf.matrix` over every field, shape, and coefficient mix — they only
change how fast the same arithmetic runs.  Sampling is seeded-random (no
extra dependencies); a failing parametrization names its seed.
"""

import numpy as np
import pytest

from repro.gf import (
    GF,
    gf_batch_matmul,
    gf_matmul,
    gf_plane_matmul,
    gf_stack_plane,
    lut_cache_clear,
    scale_lut,
)

SEEDS = [int(s) for s in np.random.SeedSequence(1202).generate_state(8)]


def random_case(rng, field):
    """One random (mat, plane) pair with degenerate coefficients mixed in."""
    f = int(rng.integers(1, 6))
    k = int(rng.integers(1, 12))
    n = int(rng.integers(1, 5000))
    mat = rng.integers(0, field.size, size=(f, k)).astype(field.dtype)
    # force the special-cased coefficients into every sample
    mat.flat[rng.integers(0, mat.size)] = 0
    mat.flat[rng.integers(0, mat.size)] = 1
    plane = rng.integers(0, field.size, size=(k, n)).astype(field.dtype)
    return mat, plane


@pytest.mark.parametrize("w", [4, 8, 16])
@pytest.mark.parametrize("seed", SEEDS)
def test_plane_matmul_matches_reference(w, seed):
    field = GF(w)
    rng = np.random.default_rng(seed)
    for _ in range(5):
        mat, plane = random_case(rng, field)
        assert np.array_equal(
            gf_plane_matmul(mat, plane, field), gf_matmul(mat, plane, field)
        )


@pytest.mark.parametrize("w", [8, 16])
@pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 9, 1023, 1024, 1025])
def test_plane_matmul_odd_and_even_lengths(w, n):
    """The pair-byte path splits n into a uint16 body + 1-byte tail."""
    field = GF(w)
    rng = np.random.default_rng(n)
    mat = rng.integers(0, field.size, size=(3, 4)).astype(field.dtype)
    plane = rng.integers(0, field.size, size=(4, n)).astype(field.dtype)
    assert np.array_equal(
        gf_plane_matmul(mat, plane, field), gf_matmul(mat, plane, field)
    )


def test_plane_matmul_empty_plane():
    field = GF(8)
    mat = np.ones((2, 3), dtype=np.uint8)
    out = gf_plane_matmul(mat, np.empty((3, 0), dtype=np.uint8), field)
    assert out.shape == (2, 0)


def test_plane_matmul_rejects_shape_mismatch():
    field = GF(8)
    with pytest.raises(ValueError):
        gf_plane_matmul(
            np.zeros((2, 3), dtype=np.uint8), np.zeros((4, 5), dtype=np.uint8), field
        )


def test_plane_matmul_noncontiguous_input():
    """Sliced (strided) planes must not change results."""
    field = GF(8)
    rng = np.random.default_rng(3)
    mat = rng.integers(0, 256, size=(2, 4)).astype(np.uint8)
    big = rng.integers(0, 256, size=(4, 2000)).astype(np.uint8)
    view = big[:, ::2]
    assert np.array_equal(
        gf_plane_matmul(mat, view, field), gf_matmul(mat, np.ascontiguousarray(view), field)
    )


@pytest.mark.parametrize("w", [4, 8])
@pytest.mark.parametrize("n", [1, 2, 7, 64, 1023, 1024])
def test_plane_matmul_bytewise_fallback_matches(monkeypatch, w, n):
    """Regression (ISSUE 9): the pair-byte fast path reinterprets byte
    pairs as host uint16 words, which silently assumed little-endian.
    Forcing the ``_PAIR_VIEW_OK`` gate off takes the bytewise fallback a
    big-endian host would take — it must be bit-exact with both the
    reference and the fast path."""
    import repro.gf.batch as batch_mod

    field = GF(w)
    rng = np.random.default_rng(n + w)
    mat = rng.integers(0, field.size, size=(3, 5)).astype(field.dtype)
    mat.flat[0] = 0
    mat.flat[1] = 1
    plane = rng.integers(0, field.size, size=(5, n)).astype(field.dtype)
    fast = gf_plane_matmul(mat, plane, field)
    monkeypatch.setattr(batch_mod, "_PAIR_VIEW_OK", False)
    slow = gf_plane_matmul(mat, plane, field)
    assert np.array_equal(slow, fast)
    assert np.array_equal(slow, gf_matmul(mat, plane, field))


def test_pair_view_gate_matches_host_byteorder():
    import sys

    import repro.gf.batch as batch_mod

    assert batch_mod._PAIR_VIEW_OK == (sys.byteorder == "little")


def test_pair_lut8_packing_is_explicitly_little_endian():
    """lut[(hi << 8) | lo] == (c*hi) << 8 | (c*lo) — the documented packing
    the uint16 view relies on (and the reason the gate exists)."""
    field = GF(8)
    c = 131
    lut = scale_lut(field, c)
    for lo, hi in [(0, 0), (1, 255), (254, 1), (77, 200)]:
        packed = int(lut[(hi << 8) | lo])
        assert packed == (field.mul(c, hi) << 8) | field.mul(c, lo)


@pytest.mark.parametrize("w", [8, 16])
@pytest.mark.parametrize("seed", SEEDS[:4])
def test_batch_matmul_matches_per_stripe(w, seed):
    field = GF(w)
    rng = np.random.default_rng(seed)
    s = int(rng.integers(1, 8))
    f, k, b = int(rng.integers(1, 5)), int(rng.integers(1, 10)), int(rng.integers(1, 3000))
    mat = rng.integers(0, field.size, size=(f, k)).astype(field.dtype)
    stacked = rng.integers(0, field.size, size=(s, k, b)).astype(field.dtype)
    out = gf_batch_matmul(mat, stacked, field)
    assert out.shape == (s, f, b)
    for i in range(s):
        assert np.array_equal(out[i], gf_matmul(mat, stacked[i], field))


def test_batch_matmul_single_stripe_degenerate():
    """S = 1 batches are the degenerate case and must stay exact."""
    field = GF(8)
    rng = np.random.default_rng(0)
    mat = rng.integers(0, 256, size=(2, 3)).astype(np.uint8)
    stacked = rng.integers(0, 256, size=(1, 3, 517)).astype(np.uint8)
    out = gf_batch_matmul(mat, stacked, field)
    assert np.array_equal(out[0], gf_matmul(mat, stacked[0], field))


def test_batch_matmul_rejects_non_3d():
    field = GF(8)
    with pytest.raises(ValueError):
        gf_batch_matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((3, 4), dtype=np.uint8), field)


def test_stack_plane_layout_and_validation():
    field = GF(8)
    rng = np.random.default_rng(1)
    stripes = [[rng.integers(0, 256, size=64).astype(np.uint8) for _ in range(3)] for _ in range(4)]
    plane = gf_stack_plane(stripes, field)
    assert plane.shape == (3, 4 * 64)
    for s in range(4):
        for t in range(3):
            assert np.array_equal(plane[t, s * 64 : (s + 1) * 64], stripes[s][t])
    with pytest.raises(ValueError):
        gf_stack_plane([], field)
    with pytest.raises(ValueError):
        gf_stack_plane([stripes[0], stripes[1][:2]], field)
    ragged = [stripes[0], [r[:32] for r in stripes[1]]]
    with pytest.raises(ValueError):
        gf_stack_plane(ragged, field)


@pytest.mark.parametrize("w", [8, 16])
def test_scale_lut_is_memoized_and_readonly(w):
    field = GF(w)
    lut_cache_clear()
    a = scale_lut(field, 7)
    b = scale_lut(field, 7)
    assert a is b
    assert not a.flags.writeable
    lut_cache_clear()
    assert scale_lut(field, 7) is not a  # rebuilt after clear, same values
    assert np.array_equal(scale_lut(field, 7), a)


def test_scale_lut_rejects_bad_coefficients():
    field = GF(8)
    with pytest.raises(ValueError):
        scale_lut(field, 0)
    with pytest.raises(ValueError):
        scale_lut(field, field.size)


def test_scale_lut_pair_semantics():
    """w=8 tables map packed byte pairs: lut[(hi<<8)|lo] = (c*hi)<<8 | (c*lo)."""
    field = GF(8)
    c = 29
    lut = scale_lut(field, c)
    rng = np.random.default_rng(9)
    for _ in range(100):
        lo, hi = int(rng.integers(0, 256)), int(rng.integers(0, 256))
        packed = int(lut[(hi << 8) | lo])
        assert packed & 0xFF == field.mul(c, lo)
        assert packed >> 8 == field.mul(c, hi)


def test_scale_lut_word_semantics():
    """w=16 tables map single field elements, matching field.scale."""
    field = GF(16)
    c = 40000 % field.size
    lut = scale_lut(field, c)
    rng = np.random.default_rng(10)
    xs = rng.integers(0, field.size, size=256).astype(field.dtype)
    assert np.array_equal(lut[xs], field.scale(c, xs))
