"""Field-axiom and kernel tests for GF(2^w), including property-based tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf.field import GF, gf8

elem8 = st.integers(min_value=0, max_value=255)
nonzero8 = st.integers(min_value=1, max_value=255)
elem16 = st.integers(min_value=0, max_value=65535)


def test_singleton_cache():
    assert GF(8) is GF(8)
    assert GF(8) is gf8
    assert GF(16) is not GF(8)


def test_invalid_w_does_not_poison_singleton_cache():
    """Regression (ISSUE 9): GF.__new__ used to cache before __init__
    validated ``w``, so one failed GF(5) call left a half-built object in
    the singleton slot and every later GF(5) returned it — an object with
    no tables that blew up at first use instead of at construction."""
    from repro.gf.field import _FIELD_CACHE

    for _ in range(2):  # the *second* call used to get the poisoned cache hit
        with pytest.raises(ValueError, match="unsupported word size"):
            GF(5)
    assert 5 not in _FIELD_CACHE
    # valid fields still cache normally afterwards
    assert GF(8) is GF(8)


# ------------------------------------------------------------------ #
# field axioms (property-based)
# ------------------------------------------------------------------ #
@given(elem8, elem8, elem8)
def test_mul_associative(a, b, c):
    f = gf8
    assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))


@given(elem8, elem8)
def test_mul_commutative(a, b):
    assert gf8.mul(a, b) == gf8.mul(b, a)


@given(elem8, elem8, elem8)
def test_distributive(a, b, c):
    f = gf8
    left = f.mul(a, f.add(b, c))
    right = f.add(f.mul(a, b), f.mul(a, c))
    assert left == right


@given(nonzero8)
def test_multiplicative_inverse(a):
    assert gf8.mul(a, gf8.inv(a)) == 1


@given(elem8)
def test_additive_self_inverse(a):
    assert gf8.add(a, a) == 0


@given(elem8, nonzero8)
def test_div_undoes_mul(a, b):
    assert gf8.div(gf8.mul(a, b), b) == a


@given(nonzero8, st.integers(min_value=-300, max_value=300))
def test_pow_matches_repeated_multiplication(a, n):
    f = gf8
    expect = 1
    if n >= 0:
        for _ in range(n):
            expect = f.mul(expect, a)
    else:
        inv = f.inv(a)
        for _ in range(-n):
            expect = f.mul(expect, inv)
    assert f.pow(a, n) == expect


@settings(max_examples=25)
@given(elem16, st.integers(min_value=1, max_value=65535))
def test_gf16_div_mul_roundtrip(a, b):
    f = GF(16)
    assert f.div(f.mul(a, b), b) == a


# ------------------------------------------------------------------ #
# error paths
# ------------------------------------------------------------------ #
def test_zero_division_raises():
    with pytest.raises(ZeroDivisionError):
        gf8.div(5, 0)
    with pytest.raises(ZeroDivisionError):
        gf8.inv(0)
    with pytest.raises(ZeroDivisionError):
        gf8.pow(0, -1)


def test_pow_zero_base():
    assert gf8.pow(0, 3) == 0
    assert gf8.pow(5, 0) == 1


def test_unsupported_field_width():
    with pytest.raises(ValueError):
        GF(12)


# ------------------------------------------------------------------ #
# vector kernels
# ------------------------------------------------------------------ #
def test_scale_matches_scalar_mul():
    rng = np.random.default_rng(1)
    buf = rng.integers(0, 256, size=1000, dtype=np.uint8)
    for coeff in (0, 1, 2, 113, 255):
        out = gf8.scale(coeff, buf)
        expect = np.array([gf8.mul(coeff, int(x)) for x in buf[:50]], dtype=np.uint8)
        assert np.array_equal(out[:50], expect)


def test_scale_zero_and_one():
    buf = np.arange(256, dtype=np.uint8)
    assert not gf8.scale(0, buf).any()
    one = gf8.scale(1, buf)
    assert np.array_equal(one, buf)
    assert one is not buf  # must be a copy, not the original


def test_addmul_in_place():
    rng = np.random.default_rng(2)
    dst = rng.integers(0, 256, size=512, dtype=np.uint8)
    src = rng.integers(0, 256, size=512, dtype=np.uint8)
    snapshot = dst.copy()
    ret = gf8.addmul(dst, 7, src)
    assert ret is dst
    assert np.array_equal(dst, snapshot ^ gf8.scale(7, src))


def test_addmul_coeff_zero_is_noop():
    dst = np.arange(16, dtype=np.uint8)
    snapshot = dst.copy()
    gf8.addmul(dst, 0, np.full(16, 255, dtype=np.uint8))
    assert np.array_equal(dst, snapshot)


def test_combine_linear_combination():
    rng = np.random.default_rng(3)
    blocks = [rng.integers(0, 256, size=64, dtype=np.uint8) for _ in range(4)]
    coeffs = [3, 0, 1, 200]
    out = gf8.combine(coeffs, blocks)
    expect = np.zeros(64, dtype=np.uint8)
    for c, b in zip(coeffs, blocks):
        expect ^= gf8.scale(c, b)
    assert np.array_equal(out, expect)


def test_combine_validates_lengths():
    with pytest.raises(ValueError):
        gf8.combine([1, 2], [np.zeros(4, dtype=np.uint8)])
    with pytest.raises(ValueError):
        gf8.combine([], [])


def test_gf16_scale_kernel():
    f = GF(16)
    rng = np.random.default_rng(4)
    buf = rng.integers(0, 65536, size=256, dtype=np.uint16)
    out = f.scale(4097, buf)
    expect = np.array([f.mul(4097, int(x)) for x in buf[:20]], dtype=np.uint16)
    assert np.array_equal(out[:20], expect)


def test_random_elements():
    rng = np.random.default_rng(5)
    vals = gf8.random_elements(1000, rng, nonzero=True)
    assert vals.dtype == np.uint8
    assert (vals != 0).all()
