"""GF matrix algebra tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf.field import GF, gf8
from repro.gf.matrix import (
    SingularMatrixError,
    gf_identity,
    gf_inv,
    gf_matmul,
    gf_matvec,
    gf_rank,
    gf_solve,
)


def random_matrix(rng, rows, cols):
    return rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)


def random_invertible(rng, n, field=gf8):
    while True:
        m = rng.integers(0, field.size, size=(n, n)).astype(field.dtype)
        if gf_rank(m, field) == n:
            return m


def test_identity_is_neutral():
    rng = np.random.default_rng(0)
    a = random_matrix(rng, 5, 5)
    eye = gf_identity(5, gf8)
    assert np.array_equal(gf_matmul(a, eye, gf8), a)
    assert np.array_equal(gf_matmul(eye, a, gf8), a)


def test_matmul_shape_validation():
    with pytest.raises(ValueError):
        gf_matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8), gf8)


def test_matmul_matches_scalar_definition():
    rng = np.random.default_rng(1)
    a = random_matrix(rng, 3, 4)
    b = random_matrix(rng, 4, 2)
    c = gf_matmul(a, b, gf8)
    for i in range(3):
        for j in range(2):
            acc = 0
            for t in range(4):
                acc ^= gf8.mul(int(a[i, t]), int(b[t, j]))
            assert c[i, j] == acc


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=2**32 - 1))
def test_inverse_roundtrip(n, seed):
    rng = np.random.default_rng(seed)
    m = random_invertible(rng, n)
    inv = gf_inv(m, gf8)
    assert np.array_equal(gf_matmul(m, inv, gf8), gf_identity(n, gf8))
    assert np.array_equal(gf_matmul(inv, m, gf8), gf_identity(n, gf8))


def test_singular_matrix_raises():
    m = np.array([[1, 2], [1, 2]], dtype=np.uint8)
    with pytest.raises(SingularMatrixError):
        gf_inv(m, gf8)


def test_non_square_inverse_rejected():
    with pytest.raises(ValueError):
        gf_inv(np.zeros((2, 3), dtype=np.uint8), gf8)


def test_solve_vector_and_matrix():
    rng = np.random.default_rng(2)
    a = random_invertible(rng, 6)
    x = rng.integers(0, 256, size=6, dtype=np.uint8)
    b = gf_matvec(a, x, gf8)
    assert np.array_equal(gf_solve(a, b, gf8), x)
    xs = rng.integers(0, 256, size=(6, 3), dtype=np.uint8)
    bs = gf_matmul(a, xs, gf8)
    assert np.array_equal(gf_solve(a, bs, gf8), xs)


def test_solve_dimension_mismatch():
    with pytest.raises(ValueError):
        gf_solve(np.eye(3, dtype=np.uint8), np.zeros(4, dtype=np.uint8), gf8)


def test_rank_properties():
    rng = np.random.default_rng(3)
    assert gf_rank(gf_identity(7, gf8), gf8) == 7
    m = random_invertible(rng, 5)
    assert gf_rank(m, gf8) == 5
    # duplicate a row -> rank drops
    m2 = m.copy()
    m2[4] = m2[0]
    assert gf_rank(m2, gf8) == 4
    assert gf_rank(np.zeros((3, 5), dtype=np.uint8), gf8) == 0


def test_rank_of_rectangular():
    rng = np.random.default_rng(4)
    tall = random_matrix(rng, 8, 3)
    assert gf_rank(tall, gf8) <= 3


def test_gf16_matrix_roundtrip():
    f = GF(16)
    rng = np.random.default_rng(5)
    m = random_invertible(rng, 4, f)
    inv = gf_inv(m, f)
    assert np.array_equal(gf_matmul(m, inv, f), gf_identity(4, f))
