"""Tests for GF(2^w) table construction."""

import numpy as np
import pytest

from repro.gf.tables import (
    PRIMITIVE_POLY,
    build_inv_table,
    build_log_exp,
    build_mul_table,
)


@pytest.mark.parametrize("w", sorted(PRIMITIVE_POLY))
def test_exp_log_are_inverse_bijections(w):
    log, exp = build_log_exp(w)
    order = (1 << w) - 1
    # exp over one period hits every nonzero element exactly once
    seen = set(int(x) for x in exp[:order])
    assert seen == set(range(1, 1 << w))
    # log(exp(i)) == i for all i in the period
    assert all(int(log[int(exp[i])]) == i for i in range(order))


@pytest.mark.parametrize("w", sorted(PRIMITIVE_POLY))
def test_exp_table_doubled_for_wraparound(w):
    log, exp = build_log_exp(w)
    order = (1 << w) - 1
    assert len(exp) == 2 * order
    assert np.array_equal(exp[:order], exp[order:])


def test_exp_starts_at_one_and_generator_is_two():
    log, exp = build_log_exp(8)
    assert exp[0] == 1
    assert exp[1] == 2
    assert log[2] == 1


def test_unsupported_width_rejected():
    with pytest.raises(ValueError):
        build_log_exp(7)


def test_mul_table_matches_log_exp():
    table = build_mul_table(8)
    log, exp = build_log_exp(8)
    rng = np.random.default_rng(0)
    a = rng.integers(1, 256, size=200)
    b = rng.integers(1, 256, size=200)
    expect = exp[log[a] + log[b]]
    assert np.array_equal(table[a, b], expect)


def test_mul_table_zero_row_and_column():
    table = build_mul_table(8)
    assert not table[0, :].any()
    assert not table[:, 0].any()


def test_mul_table_identity_row():
    table = build_mul_table(8)
    assert np.array_equal(table[1], np.arange(256, dtype=np.uint8))


def test_mul_table_rejected_for_wide_fields():
    with pytest.raises(ValueError):
        build_mul_table(16)


@pytest.mark.parametrize("w", [4, 8, 16])
def test_inv_table_correct(w):
    inv = build_inv_table(w)
    table_mul = build_mul_table(w) if w <= 8 else None
    log, exp = build_log_exp(w)
    order = (1 << w) - 1
    for a in [1, 2, 3, 5, (1 << w) - 1, (1 << w) // 2 + 1]:
        product = exp[(int(log[a]) + int(log[int(inv[a])])) % order]
        assert product == 1
    assert inv[1] == 1
