"""Golden-fixture regression tests for the paper experiments.

Each committed ``tests/golden/<name>.json`` is regenerated in-process by
the same code path as ``tools/regen_goldens.py`` and byte-compared against
the file.  A mismatch means a refactor shifted a paper figure (exp1 /
exp5 / exp6): either the change is a bug, or the new numbers are intended
and the goldens must be regenerated explicitly::

    PYTHONPATH=src python tools/regen_goldens.py
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO / "tests" / "golden"


def _load_regen():
    spec = importlib.util.spec_from_file_location(
        "regen_goldens", REPO / "tools" / "regen_goldens.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


regen = _load_regen()


@pytest.mark.parametrize("name", sorted(regen.GENERATORS))
def test_golden_matches_regenerated(name):
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), (
        f"missing golden {path}; generate it with "
        "PYTHONPATH=src python tools/regen_goldens.py"
    )
    fresh = regen.GENERATORS[name]()
    committed = path.read_text()
    assert committed == fresh, (
        f"golden {name}.json is stale: the experiment's numbers changed. "
        "If intended, rerun tools/regen_goldens.py and commit the diff."
    )


@pytest.mark.parametrize("name", sorted(regen.GENERATORS))
def test_golden_is_canonical_json(name):
    """Goldens must round-trip through the canonicalizer unchanged, so a
    hand edit (or a non-canonical rewrite) can't slip past the comparison."""
    path = GOLDEN_DIR / f"{name}.json"
    rows = json.loads(path.read_text())
    assert regen.canonical_json(rows) == path.read_text()


def test_goldens_pin_the_paper_effects():
    """Sanity: the pinned numbers still show the paper's qualitative story."""
    exp1 = json.loads((GOLDEN_DIR / "exp1.json").read_text())
    wld8 = [r for r in exp1 if r["wld"] == "WLD-8x"]
    assert wld8 and all(r["hmbr"] <= min(r["cr"], r["ir"]) + 1e-9 for r in wld8)
    exp5 = json.loads((GOLDEN_DIR / "exp5.json").read_text())
    assert all(r["enhanced_s"] <= r["baseline_s"] + 1e-9 for r in exp5)
    exp6 = json.loads((GOLDEN_DIR / "exp6.json").read_text())
    assert all(r["T_t_frac_%"] > 50.0 for r in exp6)  # transfer dominates
