"""Property-based tests for :class:`repro.system.heartbeat.HeartbeatMonitor`.

The monitor's contract has sharp edges that unit fixtures tend to miss: the
timeout boundary is inclusive-alive (``now - t > timeout`` is dead, ``<=`` is
alive), dead/alive must exactly partition the registered set, deregistering
is always allowed (even for a node already past the timeout), and
re-registering a dead node resurrects it.  Hypothesis sweeps those edges.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.system.heartbeat import HeartbeatMonitor

times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
timeouts = st.floats(min_value=1e-3, max_value=1e4, allow_nan=False, allow_infinity=False)
node_ids = st.integers(min_value=0, max_value=63)


@given(
    timeout=timeouts,
    beats=st.dictionaries(node_ids, times, min_size=1, max_size=16),
    now=times,
)
def test_dead_and_alive_partition_registered_nodes(timeout, beats, now):
    """For any history and any clock, dead ∪ alive == registered, disjoint."""
    mon = HeartbeatMonitor(timeout=timeout)
    for nid, t in beats.items():
        mon.register(nid, now=t)
    dead = mon.dead_nodes(now)
    alive = mon.alive_nodes(now)
    assert set(dead) | set(alive) == set(beats)
    assert set(dead) & set(alive) == set()
    assert dead == sorted(dead) and alive == sorted(alive)


@given(
    timeout=st.integers(min_value=1, max_value=10_000),
    last=st.integers(min_value=0, max_value=10**6),
    nid=node_ids,
)
def test_beat_at_exactly_timeout_boundary_is_alive(timeout, last, nid):
    """A node heard from exactly ``timeout`` ago is alive, not dead.

    Integer-valued clocks keep ``now - last == timeout`` exact in floats, so
    this probes the monitor's ``>`` vs ``<=`` boundary and not float round-off.
    """
    mon = HeartbeatMonitor(timeout=float(timeout))
    mon.register(nid, now=float(last))
    now = float(last + timeout)  # elapsed == timeout: the boundary
    assert nid in mon.alive_nodes(now)
    assert nid not in mon.dead_nodes(now)
    # any time past the boundary flips it
    assert nid in mon.dead_nodes(float(last + timeout + 1))


@given(timeout=timeouts, last=times, nid=node_ids)
def test_deregister_of_dead_node_removes_it_everywhere(timeout, last, nid):
    """Deregistering works even when the node is already past the timeout."""
    mon = HeartbeatMonitor(timeout=timeout)
    mon.register(nid, now=last)
    now = last + 2 * timeout + 1.0
    assert nid in mon.dead_nodes(now)
    mon.deregister(nid)
    assert nid not in mon.dead_nodes(now)
    assert nid not in mon.alive_nodes(now)
    mon.deregister(nid)  # idempotent: deregistering twice is not an error


@given(timeout=timeouts, last=times, nid=node_ids)
def test_reregister_after_death_resurrects(timeout, last, nid):
    """A replacement re-registered under the same id starts alive."""
    mon = HeartbeatMonitor(timeout=timeout)
    mon.register(nid, now=last)
    now = last + 2 * timeout + 1.0
    assert nid in mon.dead_nodes(now)
    mon.register(nid, now=now)  # replacement spare takes over the id
    assert nid in mon.alive_nodes(now)
    assert nid not in mon.dead_nodes(now)


@given(timeout=timeouts, nid=node_ids, now=times)
def test_beat_requires_registration(timeout, nid, now):
    mon = HeartbeatMonitor(timeout=timeout)
    try:
        mon.beat(nid, now)
    except KeyError:
        pass
    else:
        raise AssertionError("beat on an unregistered node must raise KeyError")
    mon.register(nid, now=now)
    mon.beat(nid, now)  # registered: fine
    mon.deregister(nid)
    try:
        mon.beat(nid, now)
    except KeyError:
        pass
    else:
        raise AssertionError("beat after deregister must raise KeyError")
