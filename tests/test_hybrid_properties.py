"""Property-based fuzzing of the HMBR planner across random scenarios.

The paper's central claim — "HMBR always outperforms CR and IR" — is checked
here as a *property* over randomized stripe shapes, failure patterns and
bandwidth assignments, together with bit-exactness of the executed repair.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.repair.centralized import plan_centralized
from repro.repair.executor import PlanExecutor, Workspace
from repro.repair.hybrid import plan_hybrid
from repro.repair.independent import plan_independent
from repro.repair.validate import validate_plan
from repro.simnet.fluid import FluidSimulator
from tests.conftest import make_repair_ctx


@st.composite
def repair_scenario(draw):
    k = draw(st.integers(min_value=2, max_value=16))
    m = draw(st.integers(min_value=1, max_value=6))
    f = draw(st.integers(min_value=1, max_value=m))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    n = k + m + f
    ups = rng.uniform(10, 250, size=n).tolist()
    downs = rng.uniform(10, 250, size=n).tolist()
    return make_repair_ctx(k=k, m=m, f=f, uplinks=ups, downlinks=downs), seed


@settings(max_examples=25, deadline=None)
@given(repair_scenario())
def test_hmbr_never_loses_property(scenario):
    ctx, _ = scenario
    sim = FluidSimulator(ctx.cluster)
    t_cr = sim.run(plan_centralized(ctx).tasks).makespan
    t_ir = sim.run(plan_independent(ctx).tasks).makespan
    t_h = sim.run(plan_hybrid(ctx).tasks).makespan
    assert t_h <= min(t_cr, t_ir) + 1e-9


@settings(max_examples=12, deadline=None)
@given(repair_scenario())
def test_all_schemes_bit_exact_property(scenario):
    ctx, seed = scenario
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(ctx.code.k, 128), dtype=np.uint8)
    full = ctx.code.encode_stripe(data)
    for planner in (plan_centralized, plan_independent, plan_hybrid):
        plan = planner(ctx)
        validate_plan(plan, ctx)
        ws = Workspace()
        ws.load_stripe(ctx.stripe, full)
        for b in ctx.failed_blocks:
            ws.drop_node(ctx.stripe.placement[b])
        PlanExecutor(ws).execute(
            plan, verify_against={b: full[b] for b in ctx.failed_blocks}
        )


@settings(max_examples=15, deadline=None)
@given(repair_scenario(), st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_explicit_split_monotone_parts(scenario, p):
    """At any p, the CR part carries p of the bytes and IR the rest."""
    ctx, _ = scenario
    plan = plan_hybrid(ctx, p=p)
    cr_mb = sum(
        t.size_mb * len(t.hops) for t in plan.tasks if "h.cr" in t.tag
    )
    ir_mb = sum(
        t.size_mb * len(t.hops) for t in plan.tasks if "h.ir" in t.tag
    )
    k, f, b = ctx.k, ctx.f, ctx.block_size_mb
    expect_cr = p * b * (k + f - 1)
    expect_ir = (1 - p) * b * k * f
    assert cr_mb == pytest.approx(expect_cr, abs=1e-6)
    assert ir_mb == pytest.approx(expect_ir, abs=1e-6)
