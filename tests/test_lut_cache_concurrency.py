"""Thread-safety regression for the module-level scale-LUT cache.

`repro.gf.batch._LUT_CACHE` is a bounded LRU ``OrderedDict`` shared by
every batch kernel call; before ISSUE 9 it was mutated with no lock.
Concurrent wave dispatch (and the serving plane's thread fan-out) could
interleave ``move_to_end`` / insert / ``popitem`` and corrupt the dict —
the exact hazard the PlanCache lock closed in ``repro.repair.batch``,
one layer further down.

The stress test shrinks the capacity so eviction churns constantly,
hammers ``scale_lut`` from many threads over an overlapping coefficient
set, mixes in concurrent ``lut_cache_clear`` calls, and asserts every
returned table is still bit-perfect.  Pre-fix this raced KeyError /
RuntimeError or corrupted the LRU order; with the lock it must be silent.
"""

import threading

import numpy as np
import pytest

import repro.gf.batch as batch_mod
from repro.gf import GF, lut_cache_clear, scale_lut


@pytest.fixture(autouse=True)
def _fresh_cache():
    lut_cache_clear()
    yield
    lut_cache_clear()


def _expected_tables(field, coeffs):
    """Independently-built ground truth for every stressed coefficient."""
    want = {}
    for c in coeffs:
        if field.w == 8:
            lut8 = np.zeros(256, dtype=np.uint16)
            lut8[: field.size] = field.mul_table[c]
            want[c] = np.add.outer(lut8 << 8, lut8).ravel()
        else:
            xs = np.arange(field.size, dtype=field.dtype)
            want[c] = field.mul(c, xs)
    return want


@pytest.mark.parametrize("w", [8, 16])
def test_scale_lut_survives_threaded_churn(monkeypatch, w):
    field = GF(w)
    # capacity far below the working set => continuous LRU eviction
    monkeypatch.setattr(batch_mod, "_LUT_CACHE_CAPACITY", 4)
    coeffs = list(range(2, 34))
    want = _expected_tables(field, coeffs)

    n_threads = 8
    iterations = 60
    errors: list[BaseException] = []
    start = threading.Barrier(n_threads + 1)

    def hammer(tid: int) -> None:
        rng = np.random.default_rng(tid)
        try:
            start.wait()
            for i in range(iterations):
                c = int(rng.choice(coeffs))
                lut = scale_lut(field, c)
                if not np.array_equal(lut, want[c]):
                    raise AssertionError(f"thread {tid}: wrong table for c={c}")
                if tid == 0 and i % 16 == 7:
                    # an unlucky clear mid-churn must never corrupt results
                    lut_cache_clear()
        except BaseException as exc:  # noqa: BLE001 - collected for the main thread
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)]
    for t in threads:
        t.start()
    start.wait()
    for t in threads:
        t.join(timeout=120)
        assert not t.is_alive(), "stress thread hung"
    assert not errors, errors[0]
    # the cache itself must still be a coherent, bounded OrderedDict
    with batch_mod._LUT_CACHE_LOCK:
        assert len(batch_mod._LUT_CACHE) <= 4
        for (cw, c), lut in batch_mod._LUT_CACHE.items():
            assert cw == w
            assert np.array_equal(lut, want[c])


def test_first_builder_wins_identity_under_contention():
    """`scale_lut(f, c) is scale_lut(f, c)` even when threads race the build."""
    field = GF(8)
    n_threads = 8
    got: list[np.ndarray] = []
    lock = threading.Lock()
    start = threading.Barrier(n_threads)

    def build() -> None:
        start.wait()
        lut = scale_lut(field, 99)
        with lock:
            got.append(lut)

    threads = [threading.Thread(target=build) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert len(got) == n_threads
    first = got[0]
    assert all(lut is first for lut in got), "racing builders returned distinct tables"
