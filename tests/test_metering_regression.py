"""Regression pins for agent compute metering and bus byte accounting.

A fixed system — (k=4, m=2) over 12 nodes + 4 spares, 8 KiB blocks,
``rng=1234`` — always produces the same placements, the same repair plans
and therefore the same bus traffic.  These tests hard-code those numbers so
an accidental change to slicing, transfer emission, or bus accounting shows
up as a diff against known-good values rather than a silent drift.

``Agent.compute_seconds`` is wall-clock and cannot be pinned to a constant;
it is pinned *structurally* (exactly which agents accrue compute) and
*exactly* under a patched deterministic clock.
"""

import numpy as np
import pytest

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.gf.field import gf8
from repro.repair.plan import CombineOp
from repro.system.agent import Agent
from repro.system.coordinator import Coordinator

K, M, F, BLOCK_BYTES = 4, 2, 2, 8192

# scheme -> (total bus bytes, transfer count, model wire MB,
#            per-node sent bytes, per-node received bytes,
#            node ids that accrue GF compute)
PINNED = {
    "cr": (
        40_960,
        5,
        80.0,
        {3: 8192, 6: 8192, 7: 8192, 11: 8192, 12: 8192},
        {12: 32_768, 13: 8192},
        [12],
    ),
    "ir": (
        65_536,
        8,
        128.0,
        {3: 16_384, 6: 16_384, 7: 16_384, 11: 16_384},
        {6: 16_384, 7: 16_384, 11: 16_384, 12: 8192, 13: 8192},
        [3, 6, 7, 11, 12, 13],
    ),
    "hmbr": (
        59_392,
        13,
        116.0,
        {3: 14_336, 6: 14_336, 7: 14_336, 11: 14_336, 12: 2048},
        {6: 12_288, 7: 12_288, 11: 12_288, 12: 14_336, 13: 8192},
        [3, 6, 7, 11, 12, 13],
    ),
}


def _build():
    nodes = [Node(i, 100.0, 100.0) for i in range(12)]
    coord = Coordinator(
        Cluster(nodes),
        RSCode(K, M),
        block_bytes=BLOCK_BYTES,
        block_size_mb=16.0,
        rng=1234,
        heartbeat_timeout=5.0,
    )
    for j in range(4):
        coord.add_spare(Node(12 + j, 100.0, 100.0))
    return coord


def _payload():
    return np.random.default_rng(99).integers(0, 256, size=65_536, dtype=np.uint8).tobytes()


@pytest.mark.parametrize("scheme", sorted(PINNED))
def test_bus_accounting_pinned(scheme):
    expect_total, expect_count, expect_wire, expect_sent, expect_recv, expect_cpu = PINNED[scheme]
    coord = _build()
    data = _payload()
    coord.write("f", data)
    assert coord.bus.total_bytes() == 0, "writes do not cross the bus"

    # crash both owners of stripe 0's first two blocks: a true multi-block repair
    stripe0 = next(s for s in coord.layout if s.stripe_id == 0)
    victims = list(stripe0.placement[:2])
    for v in victims:
        coord.crash_node(v)

    report = coord.repair(scheme=scheme)

    assert coord.bus.total_bytes() == expect_total
    assert coord.bus.transfer_count == expect_count
    assert coord.bus.sent_bytes == expect_sent
    assert coord.bus.received_bytes == expect_recv
    assert coord.bus.cross_rack_bytes == 0  # single-rack fixture
    assert report.bytes_on_wire_mb_model == pytest.approx(expect_wire)
    # conservation inside the bus itself
    assert sum(coord.bus.sent_bytes.values()) == sum(coord.bus.received_bytes.values())
    assert coord.read("f") == data

    # compute accrues exactly where the plan placed GF work, nowhere else
    with_compute = sorted(i for i, a in coord.agents.items() if a.compute_seconds > 0)
    assert with_compute == expect_cpu
    for i in expect_cpu:
        assert coord.agents[i].compute_seconds > 0.0


def test_hmbr_wire_bytes_beat_ir():
    """The paper's headline: hybrid repair moves fewer model bytes than IR."""
    assert PINNED["hmbr"][2] < PINNED["ir"][2]
    assert PINNED["cr"][2] < PINNED["hmbr"][2]  # CR is wire-optimal here


def test_compute_seconds_exact_under_patched_clock(monkeypatch):
    """With a deterministic clock, compute_seconds is pinned exactly.

    ``do_combine`` brackets the GF kernel with two ``perf_counter`` calls,
    so a clock advancing 1.0 per call accrues exactly ``1.0 * slowdown``.
    """
    ticks = iter(range(1_000_000))
    monkeypatch.setattr(
        "repro.system.agent.time.perf_counter", lambda: float(next(ticks))
    )
    agent = Agent(0)
    agent.scratch["a"] = np.arange(64, dtype=gf8.dtype)
    agent.scratch["b"] = np.arange(64, dtype=gf8.dtype)
    op = CombineOp(node=0, srcs=("a", "b"), coeffs=(1, 2), out="c")

    agent.do_combine(op)
    assert agent.compute_seconds == pytest.approx(1.0)
    agent.slowdown = 4.0  # degraded node: metered compute scales
    agent.do_combine(op)
    assert agent.compute_seconds == pytest.approx(5.0)
