"""Assorted edge cases: GF(2^4), empty plans, degenerate configs."""

import numpy as np
import pytest

from repro.gf.field import GF
from repro.gf.matrix import gf_inv, gf_matmul, gf_identity


def test_gf4_field_works():
    f = GF(4)
    assert f.size == 16
    for a in range(1, 16):
        assert f.mul(a, f.inv(a)) == 1
    buf = np.array([0, 1, 7, 15], dtype=np.uint8)
    out = f.scale(3, buf)
    assert out[0] == 0 and out[1] == 3


def test_gf4_small_code():
    """A (4, 2) code fits GF(2^4)'s 16 elements."""
    from repro.ec.rs import RSCode

    code = RSCode(4, 2, GF(4))
    rng = np.random.default_rng(0)
    data = rng.integers(0, 16, size=(4, 64)).astype(np.uint8)
    stripe = code.encode_stripe(data)
    out = code.decode({i: stripe[i] for i in (1, 2, 4, 5)}, [0, 3])
    assert np.array_equal(out[0], stripe[0])
    assert np.array_equal(out[3], stripe[3])


def test_gf4_matrix_roundtrip():
    f = GF(4)
    m = np.array([[1, 2], [3, 1]], dtype=np.uint8)
    inv = gf_inv(m, f)
    assert np.array_equal(gf_matmul(m, inv, f), gf_identity(2, f))


def test_single_data_block_code():
    """(1, m) replication-like codes work end to end."""
    from repro.ec.rs import RSCode

    code = RSCode(1, 2)
    data = np.arange(32, dtype=np.uint8).reshape(1, 32)
    stripe = code.encode_stripe(data)
    out = code.decode({2: stripe[2]}, [0])
    assert np.array_equal(out[0], data[0])


def test_repair_with_m_equals_f_uses_every_survivor():
    """f = m leaves exactly k survivors: no survivor-selection freedom."""
    from tests.conftest import make_repair_ctx

    ctx = make_repair_ctx(k=5, m=3, f=3)
    assert len(ctx.surviving_blocks()) == ctx.k
    assert ctx.chosen_survivors() == ctx.surviving_blocks()


def test_empty_simulation():
    from repro.cluster.topology import Cluster
    from repro.simnet.fluid import FluidSimulator

    cl = Cluster.homogeneous(2, 100.0)
    res = FluidSimulator(cl).run([])
    assert res.makespan == 0.0
    assert res.finish_times == {}


def test_block_name_zero_padding_sorts_correctly():
    from repro.ec.stripe import block_name

    names = [block_name(0, b) for b in range(12)]
    assert names == sorted(names)


def test_bandwidth_dataset_repr_fields():
    from repro.cluster.bandwidth import make_wld

    ds = make_wld(10, "WLD-2x", seed=0)
    assert ds.distribution == "normal"
    assert ds.seed == 0
    assert len(ds) == 10
