"""Residual branch coverage for the analytical model and topology helpers."""

import pytest

from repro.repair.model import RepairModel, repair_model, t_cr, t_of_p
from repro.repair.topology import build_chain_paths, chain_survivor_order, default_center
from tests.conftest import make_repair_ctx


def test_t_cr_with_explicit_center(fig2):
    """Choosing the other new node as center changes nothing on Fig 2
    (identical bandwidth), but must route through it."""
    assert t_cr(fig2, center=6) == pytest.approx(t_cr(fig2, center=5))


def test_repair_model_dataclass_t():
    m = RepairModel(t_cr=4.0, t_ir=2.0, p0=2.0 / 6.0, t_hmbr=4.0 / 3.0, center=9)
    assert m.t(0.0) == 2.0
    assert m.t(1.0) == 4.0
    assert m.t(m.p0) == pytest.approx(m.t_hmbr)


def test_chain_order_invalid():
    ctx = make_repair_ctx()
    with pytest.raises(ValueError):
        chain_survivor_order(ctx, "alphabetical")


def test_chain_paths_end_at_assigned_new_nodes():
    ctx = make_repair_ctx(k=4, m=2, f=2)
    paths = build_chain_paths(ctx)
    for fb, path in paths.items():
        assert path[-1] == ctx.new_node_of(fb)
        assert len(path) == ctx.k + 1


def test_default_center_policy_passthrough(fig2):
    assert default_center(fig2, "first") == fig2.new_nodes[0]


def test_repair_model_respects_chain_order(fig2):
    a = repair_model(fig2, chain_order="index")
    b = repair_model(fig2, chain_order="uplink-desc")
    assert a.t_cr == b.t_cr  # CR unaffected by chain order
    assert b.t_ir <= a.t_ir + 1e-12


def test_t_of_p_bounds():
    with pytest.raises(ValueError):
        t_of_p(-0.01, 1.0, 1.0)
    assert t_of_p(0.0, 3.0, 5.0) == 5.0
    assert t_of_p(1.0, 3.0, 5.0) == 3.0
