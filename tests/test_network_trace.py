"""NetworkTrace facade: value semantics, lowering, request threading, shims."""

import numpy as np
import pytest

from repro.cluster.bandwidth import make_wld
from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.simnet import BandwidthEvent, NetworkTrace, as_network, cluster_at
from repro.system.coordinator import Coordinator
from repro.system.request import RepairRequest


def make_system(n_data=18, n_spare=4, k=4, m=2, seed=0):
    ds = make_wld(n_data + n_spare, "WLD-4x", seed=seed)
    nodes = [Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])) for i in range(n_data)]
    coord = Coordinator(Cluster(nodes), RSCode(k, m), block_bytes=2048,
                        block_size_mb=16.0, rng=seed)
    for j in range(n_spare):
        i = n_data + j
        coord.add_spare(Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])))
    return coord


def payload(nbytes, seed=0):
    return np.random.default_rng(seed).integers(0, 256, size=nbytes, dtype=np.uint8).tobytes()


# ------------------------------------------------------------------ #
# value semantics
# ------------------------------------------------------------------ #
def test_quiet_trace_is_empty_and_additive_identity():
    q = NetworkTrace.quiet()
    assert q.is_quiet
    assert q.events_for(Cluster([Node(0, 10, 10)])) == []
    d = NetworkTrace.degrade([0], at_time=1.0, factor=2.0)
    assert (q + d) is d
    assert (d + q) is d
    assert (q + q).is_quiet


def test_from_events_sorts_and_validates():
    e1 = BandwidthEvent(time=2.0, node=0, uplink=10.0)
    e2 = BandwidthEvent(time=1.0, node=1, uplink=20.0)
    tr = NetworkTrace.from_events([e1, e2])
    assert [e.time for e in tr.events] == [1.0, 2.0]
    with pytest.raises(TypeError):
        NetworkTrace.from_events(["not-an-event"])


def test_compose_merges_parts_in_time_order():
    cl = Cluster([Node(0, 100, 100), Node(1, 100, 100)])
    tr = (NetworkTrace.degrade([0], at_time=3.0, factor=2.0)
          + NetworkTrace.degrade([1], at_time=1.0, factor=4.0))
    events = tr.events_for(cl)
    assert [e.time for e in events] == [1.0, 3.0]
    assert events[0].node == 1 and events[0].uplink == 25.0
    assert events[1].node == 0 and events[1].uplink == 50.0


def test_ou_trace_is_seed_deterministic():
    cl = Cluster([Node(0, 100, 100), Node(1, 80, 120)])
    a = NetworkTrace.ou(5.0, seed=42).events_for(cl)
    b = NetworkTrace.ou(5.0, seed=42).events_for(cl)
    c = NetworkTrace.ou(5.0, seed=43).events_for(cl)
    assert a == b
    assert a != c


def test_as_network_coercions():
    assert as_network(None).is_quiet
    tr = NetworkTrace.degrade([0], at_time=1.0, factor=2.0)
    assert as_network(tr) is tr
    ev = BandwidthEvent(time=1.0, node=0, uplink=5.0)
    wrapped = as_network([ev])
    assert wrapped.kind == "events" and wrapped.events == (ev,)


def test_cluster_at_snapshot_applies_prefix_of_events():
    cl = Cluster([Node(0, 100, 200, rack=1), Node(1, 80, 120)])
    events = [
        BandwidthEvent(time=1.0, node=0, uplink=50.0),
        BandwidthEvent(time=2.0, node=0, uplink=10.0, downlink=20.0),
        BandwidthEvent(time=3.0, node=1, uplink=1.0),
    ]
    snap = cluster_at(cl, events, up_to=2.0)
    assert snap[0].uplink == 10.0 and snap[0].downlink == 20.0
    assert snap[1].uplink == 80.0  # t=3 event not yet applied
    assert snap[0].rack == 1
    # the original cluster is untouched
    assert cl[0].uplink == 100.0


# ------------------------------------------------------------------ #
# request threading
# ------------------------------------------------------------------ #
def test_repair_request_normalizes_network():
    ev = BandwidthEvent(time=1.0, node=0, uplink=5.0)
    req = RepairRequest(network=[ev])
    assert isinstance(req.network, NetworkTrace)
    assert req.network.events == (ev,)
    assert RepairRequest().network is None or as_network(RepairRequest().network).is_quiet


def test_repair_under_trace_slower_than_quiet():
    data = payload(60_000, seed=3)

    c1 = make_system()
    c1.write("f", data)
    c1.crash_node(0)
    quiet = c1.repair(RepairRequest(scheme="hmbr"))
    assert c1.read("f") == data

    survivors = [n for n in range(1, 18)]
    trace = NetworkTrace.degrade(survivors, at_time=0.05, factor=16.0)
    c2 = make_system()
    c2.write("f", data)
    c2.crash_node(0)
    churned = c2.repair(RepairRequest(scheme="hmbr", network=trace))
    assert c2.read("f") == data

    assert churned.makespan_s > quiet.makespan_s
    # the data plane is unaffected by the bandwidth model
    assert churned.bytes_moved == quiet.bytes_moved


def test_serve_request_accepts_network():
    from repro.workload import ServeRequest, WorkloadSpec

    coord = make_system()
    spec = WorkloadSpec(n_objects=4, object_bytes=2 * 4 * 2048,
                        duration_s=2.0, rate_ops_s=4.0, seed=7)
    trace = NetworkTrace.degrade(list(range(4)), at_time=0.5, factor=4.0)
    req = ServeRequest(spec=spec, network=trace)
    assert isinstance(req.network, NetworkTrace)
    res = coord.serve(req)
    assert res is not None


# ------------------------------------------------------------------ #
# deprecation shims route bit-exact
# ------------------------------------------------------------------ #
def test_scheduler_events_kwarg_warns_and_matches_network():
    from repro.sched import RepairScheduler

    data = payload(60_000, seed=9)
    events = [BandwidthEvent(time=0.1, node=i, uplink=8.0) for i in range(2, 8)]

    def run(**kw):
        coord = make_system()
        coord.write("f", data)
        coord.crash_node(0)
        sched = RepairScheduler(coord)
        sched.submit("hmbr")
        report = sched.run_pending(**kw)
        assert coord.read("f") == data
        return report

    with pytest.warns(DeprecationWarning, match="run_pending"):
        legacy = run(events=list(events))
    modern = run(network=NetworkTrace.from_events(events))
    assert legacy.per_job_finish_s == modern.per_job_finish_s

    coord = make_system()
    sched = RepairScheduler(coord)
    sched.submit("hmbr")
    with pytest.raises(ValueError):
        sched.run_pending(network=NetworkTrace.quiet(), events=list(events))
