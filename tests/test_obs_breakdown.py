"""Trace-vs-live equivalence of the Table II breakdown.

``breakdown_from_trace`` must reproduce ``breakdown_for_plan`` exactly from
nothing but recorded spans — same T_t, same T_o, same scheme — for every
scheme, which is what lets exp6 regenerate Table II off a trace.
"""

import numpy as np
import pytest

from repro.analysis.breakdown import CostModel, breakdown_for_plan, breakdown_from_trace
from repro.experiments.common import build_scenario, plan_for
from repro.obs import Tracer
from repro.repair.executor import PlanExecutor, Workspace
from repro.simnet.fluid import FluidSimulator

TEST_BLOCK_BYTES = 1 << 14


def _execute(ctx, sc, scheme, tracer=None):
    rng = np.random.default_rng(7)
    data = rng.integers(0, 256, size=(ctx.code.k, TEST_BLOCK_BYTES), dtype=np.uint8)
    full = ctx.code.encode_stripe(data)
    plan = plan_for(ctx, scheme)
    ws = Workspace()
    ws.load_stripe(ctx.stripe, full)
    for node in sc.dead_nodes:
        ws.drop_node(node)
    report = PlanExecutor(ws).execute(
        plan, verify_against={b: full[b] for b in ctx.failed_blocks}, tracer=tracer
    )
    return plan, report


@pytest.mark.parametrize("scheme", ["cr", "ir", "hmbr"])
def test_breakdown_from_trace_matches_live(scheme):
    sc = build_scenario(8, 2, 2, wld="WLD-8x", seed=11, block_size_mb=64.0)
    ctx = sc.ctx
    cost = CostModel()

    tracer = Tracer()
    plan, report = _execute(ctx, sc, scheme, tracer=tracer)
    FluidSimulator(ctx.cluster).run(plan.tasks, tracer=tracer)

    live = breakdown_for_plan(ctx, plan, report, TEST_BLOCK_BYTES, cost)
    traced = breakdown_from_trace(tracer, ctx, test_block_bytes=TEST_BLOCK_BYTES, cost=cost)

    assert traced.scheme == live.scheme
    assert traced.k == live.k and traced.m == live.m and traced.f == live.f
    assert traced.transfer_s == live.transfer_s  # same deterministic simulator
    assert traced.other_s == live.other_s  # same integer GF bytes, same model
    assert traced.transfer_fraction == live.transfer_fraction
    # python seconds are the same measurements summed in a different order
    assert traced.python_compute_s == pytest.approx(live.python_compute_s)


def test_breakdown_from_trace_uses_latest_execution():
    """Two executions on one tracer: the row reflects the most recent one."""
    sc = build_scenario(8, 2, 2, wld="WLD-8x", seed=11, block_size_mb=64.0)
    ctx = sc.ctx
    tracer = Tracer()
    _execute(ctx, sc, "cr", tracer=tracer)
    plan, report = _execute(ctx, sc, "hmbr", tracer=tracer)
    FluidSimulator(ctx.cluster).run(plan.tasks, tracer=tracer)

    traced = breakdown_from_trace(tracer, ctx, test_block_bytes=TEST_BLOCK_BYTES)
    live = breakdown_for_plan(ctx, plan, report, TEST_BLOCK_BYTES)
    assert traced.scheme == "HMBR"
    assert traced.other_s == live.other_s


def test_breakdown_from_trace_requires_execute_span():
    sc = build_scenario(8, 2, 2, wld="WLD-8x", seed=11)
    with pytest.raises(ValueError, match="execute"):
        breakdown_from_trace(Tracer(), sc.ctx, test_block_bytes=TEST_BLOCK_BYTES)


def test_breakdown_from_trace_requires_sim_span():
    sc = build_scenario(8, 2, 2, wld="WLD-8x", seed=11)
    tracer = Tracer()
    _execute(sc.ctx, sc, "cr", tracer=tracer)
    with pytest.raises(ValueError, match="sim"):
        breakdown_from_trace(tracer, sc.ctx, test_block_bytes=TEST_BLOCK_BYTES)
