"""Observability invariants: conservation, nesting, and bit-exactness.

The three guarantees ISSUE-level acceptance rests on:

* **byte conservation** — the sum of ``transfer`` span byte args equals
  :meth:`DataBus.total_bytes` exactly (every metered copy produced exactly
  one span, and nothing else did);
* **well-formedness** — every span closes, and ops-domain spans are
  properly nested per actor, even through fault/retry/abort paths;
* **zero observer effect** — a run with a session attached is byte- and
  value-identical to the same run without one (wall-clock compute seconds
  excepted: they are real time and differ run to run by nature).
"""

import json

import numpy as np
import pytest

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.faults.schedule import FaultSchedule
from repro.obs import Observability, OPS_DOMAIN, SIM_DOMAIN
from repro.system.coordinator import Coordinator

K, M, BLOCK_BYTES = 4, 2, 8192


def _build():
    """The pinned fixture from test_metering_regression: fully deterministic."""
    coord = Coordinator(
        Cluster([Node(i, 100.0, 100.0) for i in range(12)]),
        RSCode(K, M),
        block_bytes=BLOCK_BYTES,
        block_size_mb=16.0,
        rng=1234,
        heartbeat_timeout=5.0,
    )
    for j in range(4):
        coord.add_spare(Node(12 + j, 100.0, 100.0))
    data = np.random.default_rng(99).integers(0, 256, size=65_536, dtype=np.uint8).tobytes()
    coord.write("f", data)
    return coord, data


def _crash_two(coord):
    stripe0 = next(s for s in coord.layout if s.stripe_id == 0)
    for v in stripe0.placement[:2]:
        coord.crash_node(v)


def _schedule():
    return FaultSchedule.from_tuples(
        [
            (0.0, "kill", 2),
            (0.5, "drop", 5),
            (1.0, "flap", 6, 2.0),
            (1.5, "delay", 7, 0.8),
        ]
    )


# Deterministic FaultRepairReport fields (everything except wall-clock
# compute_s_total, and events_fired whose dataclass instances compare fine).
_FAULT_REPORT_FIELDS = [
    "scheme", "dead_nodes", "stripes_repaired", "blocks_recovered", "rounds",
    "attempts", "replans", "retries", "drops", "delay_s", "backoff_s",
    "detections", "events_fired", "executed_transfer_bytes",
    "wasted_transfer_bytes", "simulated_transfer_s", "sim_bytes_mb",
    "per_stripe_transfer_s", "bytes_on_wire_mb_model", "replacements",
]


@pytest.mark.parametrize("scheme", ["cr", "ir", "hmbr"])
def test_disabled_hooks_are_bit_exact(scheme):
    """An attached session must not change a healthy repair's outputs at all."""
    c1, data = _build()
    _crash_two(c1)
    r1 = c1.repair(scheme=scheme)

    c2, _ = _build()
    _crash_two(c2)
    Observability().attach(c2)
    r2 = c2.repair(scheme=scheme)

    for f in ("scheme", "dead_nodes", "stripes_repaired", "blocks_recovered",
              "simulated_transfer_s", "bytes_on_wire_mb_model",
              "per_stripe_transfer_s", "replacements"):
        assert getattr(r1, f) == getattr(r2, f), f
    assert c1.bus.total_bytes() == c2.bus.total_bytes()
    assert c1.bus.sent_bytes == c2.bus.sent_bytes
    assert c1.bus.received_bytes == c2.bus.received_bytes
    assert c1.bus.transfer_count == c2.bus.transfer_count
    assert c2.read("f") == data


def test_disabled_hooks_are_bit_exact_under_faults():
    """Same guarantee through the fault runtime's retry/replan machinery."""
    c1, data = _build()
    r1 = c1.repair_with_faults(_schedule(), scheme="hmbr")

    c2, _ = _build()
    Observability().attach(c2)
    r2 = c2.repair_with_faults(_schedule(), scheme="hmbr")

    for f in _FAULT_REPORT_FIELDS:
        assert getattr(r1, f) == getattr(r2, f), f
    assert c1.bus.total_bytes() == c2.bus.total_bytes()
    assert c2.read("f") == data


@pytest.mark.parametrize("scheme", ["cr", "ir", "hmbr"])
def test_transfer_spans_conserve_bus_bytes(scheme):
    coord, _ = _build()
    obs = Observability().attach(coord)
    _crash_two(coord)
    coord.repair(scheme=scheme)

    spans = obs.tracer.find(cat="transfer", domain=OPS_DOMAIN)
    assert spans, "repair produced no transfer spans"
    assert sum(s.args["bytes"] for s in spans) == coord.bus.total_bytes()
    assert len(spans) == coord.bus.transfer_count
    # the metrics see the same totals
    snap = obs.metrics.snapshot()
    assert snap["counters"]["bus.bytes"] == coord.bus.total_bytes()
    assert snap["counters"]["bus.transfers"] == coord.bus.transfer_count


def test_transfer_spans_conserve_bus_bytes_under_faults():
    coord, _ = _build()
    obs = Observability().attach(coord)
    coord.repair_with_faults(_schedule(), scheme="hmbr")

    spans = obs.tracer.find(cat="transfer", domain=OPS_DOMAIN)
    assert sum(s.args["bytes"] for s in spans) == coord.bus.total_bytes()


def test_compute_spans_match_agent_meters_exactly():
    """Per node, summed compute-span seconds equal Agent.compute_seconds.

    Each hook call carries exactly the ``dt`` the agent just accrued, and
    left-to-right summation reproduces the agent's own accumulation — so
    the match is bit-exact, not approximate.
    """
    coord, _ = _build()
    obs = Observability().attach(coord)
    _crash_two(coord)
    coord.repair(scheme="hmbr")

    by_node: dict[int, float] = {}
    for s in obs.tracer.find(cat="compute", domain=OPS_DOMAIN):
        by_node[s.args["node"]] = by_node.get(s.args["node"], 0.0) + s.args["seconds"]
    metered = {i: a.compute_seconds for i, a in coord.agents.items() if a.compute_seconds > 0}
    assert by_node == metered


def test_trace_is_well_formed_and_nested():
    coord, _ = _build()
    obs = Observability().attach(coord)
    _crash_two(coord)
    coord.repair(scheme="hmbr")

    t = obs.tracer
    t.validate()  # closure + per-actor nesting
    roots = t.find(cat="repair")
    assert len(roots) == 1
    root = roots[0]
    # the structural children hang off the repair root
    kids = {s.cat for s in t.children_of(root)}
    assert "plan" in kids and "dispatch" in kids
    # sim-domain spans exist and carry the simulator's makespan
    sim_roots = [s for s in t.find(domain=SIM_DOMAIN) if s.cat == "sim"]
    assert len(sim_roots) == 1
    assert sim_roots[0].args["makespan"] == pytest.approx(sim_roots[0].t1)


def test_trace_is_well_formed_under_faults():
    coord, _ = _build()
    obs = Observability().attach(coord)
    coord.repair_with_faults(_schedule(), scheme="hmbr")

    t = obs.tracer
    t.validate()
    root = t.find(cat="repair")[0]
    assert root.name == "repair-with-faults"
    attempts = t.find(cat="attempt")
    assert attempts and all("outcome" in s.args for s in attempts)
    assert {s.args["kind"] for s in t.find(cat="fault")} == {"kill", "drop", "flap", "delay"}


def test_chrome_trace_structure(tmp_path):
    coord, _ = _build()
    obs = Observability().attach(coord)
    _crash_two(coord)
    coord.repair(scheme="hmbr")

    path = tmp_path / "trace.json"
    obs.tracer.write_chrome_trace(path)
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]

    xs = [e for e in events if e["ph"] == "X"]
    begins = [e for e in events if e["ph"] == "b"]
    ends = [e for e in events if e["ph"] == "e"]
    metas = [e for e in events if e["ph"] == "M"]
    assert len(events) == len(xs) + len(begins) + len(ends) + len(metas)

    # ops spans are complete events on pid 1; sim spans balanced b/e on pid 2
    assert xs and all(e["pid"] == 1 and e["dur"] >= 0 for e in xs)
    assert begins and all(e["pid"] == 2 for e in begins + ends)
    assert sorted(e["id"] for e in begins) == sorted(e["id"] for e in ends)
    # both processes are named for the viewer
    names = {e["args"]["name"] for e in metas if e["name"] == "process_name"}
    assert names == {"data-plane", "fluid-sim"}


def test_export_refuses_open_spans():
    from repro.obs import Tracer, to_chrome_trace

    t = Tracer()
    t.begin("open", actor="a")
    with pytest.raises(ValueError, match="open span"):
        to_chrome_trace(t)


def test_spans_jsonl_round_trips(tmp_path):
    coord, _ = _build()
    obs = Observability().attach(coord)
    _crash_two(coord)
    coord.repair(scheme="cr")

    path = tmp_path / "spans.jsonl"
    obs.tracer.write_jsonl(path)
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(rows) == len(obs.tracer.spans)
    by_id = {r["span_id"]: r for r in rows}
    for r in rows:
        if r["parent_id"] is not None:
            assert r["parent_id"] in by_id


def test_attach_detach_semantics():
    coord, _ = _build()
    obs = Observability()
    assert obs.attach(coord) is obs
    assert obs.attach(coord) is obs  # idempotent for the same session
    with pytest.raises(RuntimeError, match="already attached"):
        Observability().attach(coord)
    obs.detach(coord)
    assert coord.obs is None
    assert coord.bus.obs_hook is None
    assert all(a.obs_hook is None for a in coord.agents.values())
    Observability().detach(coord)  # detaching a never-attached session: no-op
    # after detach a new session may attach
    Observability().attach(coord)


def test_spares_added_after_attach_are_hooked():
    coord, _ = _build()
    obs = Observability().attach(coord)
    coord.add_spare(Node(40, 100.0, 100.0))
    assert coord.agents[40].obs_hook is not None
    obs.detach(coord)
    assert coord.agents[40].obs_hook is None


# ------------------------------------------------------------------ #
# the serving plane holds the same three guarantees (ISSUE 6)
# ------------------------------------------------------------------ #
from repro.system.request import RepairRequest  # noqa: E402
from repro.workload import ServingPlane, WorkloadSpec  # noqa: E402

_SERVE_SPEC = WorkloadSpec(
    n_objects=5, object_bytes=2 * K * BLOCK_BYTES, duration_s=5.0,
    rate_ops_s=6.0, read_fraction=0.85, write_bytes=128, seed=777,
)


def _build_serving(kill=0):
    """A fresh provisioned serving plane (same pinned cluster as _build)."""
    coord, _ = _build()
    plane = ServingPlane(coord, _SERVE_SPEC)
    plane.provision()
    if kill:
        sid0 = coord.files[_SERVE_SPEC.object_name(0)][0][0]
        stripe = next(s for s in coord.layout if s.stripe_id == sid0)
        for v in stripe.placement[:kill]:
            coord.crash_node(v)
    return coord, plane


def test_serving_foreground_bytes_conserve_on_bus():
    """Healthy serving: foreground bytes == bus delta == transfer-span sum."""
    coord, plane = _build_serving()
    before = coord.bus.total_bytes()
    obs = Observability().attach(coord)
    res = plane.run()
    assert res.foreground_bytes == res.bus_bytes_delta
    assert res.bus_bytes_delta == coord.bus.total_bytes() - before
    spans = obs.tracer.find(cat="transfer", domain=OPS_DOMAIN)
    assert sum(s.args["bytes"] for s in spans) == res.bus_bytes_delta


def test_serving_merged_wave_conserves_bytes():
    """foreground + repair bytes == the merged run's bus delta, exactly.

    The repair share comes from a twin system running the identical storm
    with no foreground traffic (the data planes are independent, so its
    bus delta *is* the repair's share of the merged run).
    """
    storm = (RepairRequest(scheme="hmbr", batched=True, priority="background"),)
    c1, p1 = _build_serving(kill=2)
    res = p1.run(repair=storm)
    assert res.degraded_reads > 0

    c2, _ = _build_serving(kill=2)  # same seed -> same placement, same kills
    before = c2.bus.total_bytes()
    c2.sched.submit(scheme="hmbr", priority="background")
    c2.sched.run_pending(batched=True)
    repair_share = c2.bus.total_bytes() - before

    assert res.bus_bytes_delta == res.foreground_bytes + repair_share
    assert repair_share > 0


def test_serving_attached_session_is_value_identical():
    """Percentiles, outcomes, and bytes match bit-exactly attached/detached."""
    storm = (RepairRequest(scheme="hmbr", batched=True, priority="background"),)
    _, p1 = _build_serving(kill=2)
    r1 = p1.run(repair=storm)

    c2, p2 = _build_serving(kill=2)
    obs = Observability().attach(c2)
    r2 = p2.run(repair=storm)

    assert r1.summary() == r2.summary()
    assert r1.outcomes == r2.outcomes
    assert (r1.foreground_bytes, r1.bus_bytes_delta) == (
        r2.foreground_bytes,
        r2.bus_bytes_delta,
    )
    # and the attached session's histograms reproduce the result tables
    snap = obs.metrics.snapshot()
    assert snap["histograms"]["workload.read_latency_s"] == r2.latency
    assert snap["histograms"]["workload.degraded_read_latency_s"] == r2.latency_degraded
    assert snap["counters"]["workload.degraded_reads"] == r2.degraded_reads
    assert snap["counters"]["workload.foreground_bytes"] == r2.foreground_bytes


def test_serving_trace_is_well_formed_in_both_domains():
    coord, plane = _build_serving(kill=2)
    obs = Observability().attach(coord)
    res = plane.run(
        repair=(RepairRequest(scheme="hmbr", batched=True, priority="background"),)
    )

    t = obs.tracer
    t.validate()
    roots = [s for s in t.find(cat="workload", domain=OPS_DOMAIN) if s.name == "workload.run"]
    assert len(roots) == 1
    all_ops = t.find(cat="workload", domain=OPS_DOMAIN)
    op_spans = [s for s in all_ops if s.name.startswith("workload.op:")]
    assert len(op_spans) == len(res.outcomes)
    # every degraded stripe decode emits its ops-domain chunk spans
    chunk_spans = [s for s in all_ops if s.name.startswith("workload.chunk:")]
    assert len(chunk_spans) >= res.degraded_reads
    # sim-domain timeline: one span per op, spanning arrival -> finish
    sim = t.find(cat="workload.sim", domain=SIM_DOMAIN)
    sim_ops = [s for s in sim if s.name.startswith("workload.op:")]
    assert len(sim_ops) == len(res.outcomes)
    by_op = {s.args["op"]: s for s in sim_ops}
    for o in res.outcomes:
        span = by_op[o.op_id]
        assert span.t0 == o.t_s
        assert span.t1 == max(o.finish_s, o.t_s)
    # sim-domain chunk spans mirror the modeled decode occupancy: one per
    # degraded stripe read per chunk (chunks=1 here), inside the op window
    sim_chunks = [s for s in sim if s.name.startswith("workload.chunk:")]
    assert len(sim_chunks) == sum(
        o.degraded_stripes for o in res.outcomes if o.ok
    )
    for s in sim_chunks:
        parent = by_op[s.args["op"]]
        assert parent.t0 <= s.t0 <= s.t1 <= parent.t1 + 1e-9
