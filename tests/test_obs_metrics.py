"""Unit tests for the metrics registry: counters, gauges, histograms."""

import json

import pytest

from repro.obs import MetricsRegistry


def test_counter_accumulates_and_rejects_negative():
    m = MetricsRegistry()
    c = m.counter("bus.bytes")
    c.inc(10)
    c.inc()
    assert c.value == 11
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_holds_last_value():
    m = MetricsRegistry()
    g = m.gauge("repair.simulated_transfer_s")
    g.set(3.5)
    g.set(1.25)
    assert g.value == 1.25


def test_histogram_summary_statistics():
    m = MetricsRegistry()
    h = m.histogram("bus.transfer_bytes")
    for v in [10, 20, 30, 40]:
        h.observe(v)
    assert h.count == 4
    assert h.total == 100
    assert h.mean == 25
    assert h.quantile(0.0) == 10
    assert h.quantile(1.0) == 40
    assert h.quantile(0.5) == 25  # linear interpolation between 20 and 30
    s = h.summary()
    assert s["count"] == 4 and s["min"] == 10 and s["max"] == 40


def test_empty_histogram_quantile_raises():
    h = MetricsRegistry().histogram("empty")
    with pytest.raises(ValueError):
        h.quantile(0.5)


def test_registry_get_or_create_is_stable():
    m = MetricsRegistry()
    assert m.counter("a") is m.counter("a")
    assert m.gauge("b") is m.gauge("b")
    assert m.histogram("c") is m.histogram("c")
    assert sorted(m.names()) == ["a", "b", "c"]
    assert len(m) == 3 and "a" in m and "z" not in m


def test_registry_rejects_kind_collision():
    m = MetricsRegistry()
    m.counter("x")
    with pytest.raises(TypeError, match="x"):
        m.gauge("x")


def test_snapshot_shape():
    m = MetricsRegistry()
    m.counter("c").inc(2)
    m.gauge("g").set(7.0)
    m.histogram("h").observe(1.0)
    snap = m.snapshot()
    assert snap["counters"] == {"c": 2}
    assert snap["gauges"] == {"g": 7.0}
    assert snap["histograms"]["h"]["count"] == 1


def test_write_jsonl_round_trips(tmp_path):
    m = MetricsRegistry()
    m.counter("c").inc(5)
    m.histogram("h").observe(2.5)
    path = tmp_path / "metrics.jsonl"
    m.write_jsonl(path)
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    by_name = {r["name"]: r for r in rows}
    assert by_name["c"]["kind"] == "counter" and by_name["c"]["value"] == 5
    assert by_name["h"]["kind"] == "histogram" and by_name["h"]["count"] == 1


def test_reset_clears_everything():
    m = MetricsRegistry()
    m.counter("c").inc()
    m.reset()
    assert len(m) == 0
