"""Unit tests for the span tracer: clocks, nesting, validation, queries."""

import pytest

from repro.obs import OPS_DOMAIN, SIM_DOMAIN, TraceError, Tracer


def test_clock_starts_at_zero_and_advances():
    t = Tracer(tick_s=2.0)
    assert t.now == 0.0
    assert t.advance() == 2.0
    assert t.advance(0.5) == 2.5
    with pytest.raises(TraceError):
        t.advance(-1.0)


def test_sync_never_moves_backwards():
    t = Tracer()
    t.advance(5.0)
    assert t.sync(3.0) == 5.0
    assert t.sync(7.0) == 7.0


def test_begin_end_records_parentage():
    t = Tracer()
    outer = t.begin("outer", actor="a")
    inner = t.begin("inner", actor="a")
    assert inner.parent_id == outer.span_id
    t.advance()
    t.end(inner)
    t.end(outer)
    assert inner.closed and outer.closed
    assert t.children_of(outer) == [inner]
    t.validate()


def test_end_out_of_order_raises():
    t = Tracer()
    outer = t.begin("outer", actor="a")
    t.begin("inner", actor="a")
    with pytest.raises(TraceError, match="innermost"):
        t.end(outer)


def test_end_before_start_raises():
    t = Tracer()
    t.advance(5.0)
    s = t.begin("s", actor="a")
    with pytest.raises(TraceError, match="end before"):
        t.end(s, ts=4.0)


def test_actors_have_independent_stacks():
    t = Tracer()
    a = t.begin("a-span", actor="a")
    b = t.begin("b-span", actor="b")
    t.advance()
    t.end(a)  # closing a does not disturb b's stack
    t.end(b)
    assert a.parent_id is None and b.parent_id is None
    t.validate()


def test_unwind_closes_interrupted_children():
    t = Tracer()
    root = t.begin("root", actor="a")
    t.begin("child", actor="a")
    t.begin("grandchild", actor="a")
    t.advance()
    t.unwind(root)  # as a finally block would after an exception
    assert not t.open_spans()
    t.validate()


def test_unwind_requires_open_span():
    t = Tracer()
    s = t.begin("s", actor="a")
    t.end(s)
    with pytest.raises(TraceError, match="not open"):
        t.unwind(s)


def test_span_contextmanager_closes_on_exception():
    t = Tracer()
    with pytest.raises(RuntimeError, match="boom"):
        with t.span("work", actor="a"):
            t.advance()
            raise RuntimeError("boom")
    assert not t.open_spans()
    t.validate()


def test_tick_span_advances_one_tick():
    t = Tracer(tick_s=1.0)
    s = t.tick_span("op", actor="node:3", cat="transfer", bytes=42)
    assert (s.t0, s.t1) == (0.0, 1.0)
    assert t.now == 1.0
    assert s.args["bytes"] == 42
    assert s.domain == OPS_DOMAIN


def test_instant_is_zero_duration():
    t = Tracer()
    t.advance(3.0)
    s = t.instant("marker", actor="a")
    assert s.t0 == s.t1 == 3.0
    t.validate()


def test_add_sim_span_allows_overlap():
    t = Tracer()
    t.add("f1", actor="net", cat="sim-transfer", t0=0.0, t1=5.0)
    t.add("f2", actor="net", cat="sim-transfer", t0=1.0, t1=3.0)
    t.add("f3", actor="net", cat="sim-transfer", t0=2.0, t1=9.0)  # overlaps f1
    t.validate()  # sim-domain interval spans are exempt from nesting


def test_add_rejects_negative_duration():
    t = Tracer()
    with pytest.raises(TraceError, match="t1 < t0"):
        t.add("bad", actor="a", cat="sim", t0=2.0, t1=1.0)


def test_validate_rejects_unclosed_spans():
    t = Tracer()
    t.begin("open", actor="a")
    with pytest.raises(TraceError, match="unclosed"):
        t.validate()


def test_validate_rejects_ops_overlap_without_nesting():
    t = Tracer()
    # two ops-domain spans on one actor that overlap but neither contains
    # the other: [0, 2) and [1, 3)
    t.add("s1", actor="a", cat="op", t0=0.0, t1=2.0, domain=OPS_DOMAIN)
    t.add("s2", actor="a", cat="op", t0=1.0, t1=3.0, domain=OPS_DOMAIN)
    with pytest.raises(TraceError, match="overlaps"):
        t.validate()


def test_validate_accepts_nested_and_disjoint_ops_spans():
    t = Tracer()
    t.add("outer", actor="a", cat="op", t0=0.0, t1=4.0, domain=OPS_DOMAIN)
    t.add("inner", actor="a", cat="op", t0=1.0, t1=2.0, domain=OPS_DOMAIN)
    t.add("later", actor="a", cat="op", t0=4.0, t1=6.0, domain=OPS_DOMAIN)
    t.add("other-actor", actor="b", cat="op", t0=0.5, t1=5.0, domain=OPS_DOMAIN)
    t.validate()


def test_find_filters_compose():
    t = Tracer()
    t.tick_span("x", actor="node:1", cat="transfer")
    t.tick_span("y", actor="node:2", cat="compute")
    t.add("z", actor="net", cat="sim", t0=0.0, t1=1.0)
    assert [s.name for s in t.find(cat="transfer")] == ["x"]
    assert [s.name for s in t.find(domain=SIM_DOMAIN)] == ["z"]
    assert [s.name for s in t.find(actor="node:2", cat="compute")] == ["y"]
    assert t.find(name="nope") == []


def test_duration_of_open_span_raises():
    t = Tracer()
    s = t.begin("s", actor="a")
    with pytest.raises(TraceError, match="still open"):
        _ = s.duration
