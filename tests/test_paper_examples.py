"""Worked examples from the paper, pinned end-to-end.

These tests are the reproduction's anchor: each checks a number or claim the
paper states explicitly, using the public API the way a reader would.
"""

import numpy as np
import pytest

from repro.ec.rs import RSCode
from repro.gf.field import gf8
from repro.repair.centralized import plan_centralized
from repro.repair.hybrid import plan_hybrid
from repro.repair.independent import plan_independent
from repro.repair.model import repair_model
from repro.simnet.fluid import FluidSimulator


def test_fig2_code_equations():
    """Figure 2 defines P1 = D1 + D2 + D3 and P2 = D1 + 3 D2 + 9 D3.

    Our default construction differs (Cauchy), but an equivalent generator
    exists in GF(2^8): build it manually and check MDS decoding of the
    figure's loss pattern (D1 and P2)."""
    # generator rows: I3, [1,1,1], [1,3,9]  (GF(2^8): 9 = 3*3 since 3*3 = x+1 squared... verify via field)
    g_parity = np.array([[1, 1, 1], [1, 3, gf8.mul(3, 3)]], dtype=np.uint8)
    rng = np.random.default_rng(0)
    d = rng.integers(0, 256, size=(3, 128), dtype=np.uint8)
    p1 = d[0] ^ d[1] ^ d[2]
    p2 = d[0] ^ gf8.scale(3, d[1]) ^ gf8.scale(int(g_parity[1, 2]), d[2])
    # lose D1 and P2; recover D1 = P1 + D2 + D3 (XOR) as the paper writes
    d1 = p1 ^ d[1] ^ d[2]
    assert np.array_equal(d1, d[0])
    # recover P2 = D1 + 3 D2 + 9 D3 after D1 is back
    p2_again = d1 ^ gf8.scale(3, d[1]) ^ gf8.scale(int(g_parity[1, 2]), d[2])
    assert np.array_equal(p2_again, p2)


def test_fig2a_centralized_download_time(fig2):
    """§II-C: t1 = 64MB x 3 / 1000MB/s = 0.192 s."""
    plan = plan_centralized(fig2)
    res = FluidSimulator(fig2.cluster).run(plan.tasks)
    fetch_finish = max(
        t for tid, t in res.finish_times.items() if ":fetch:" in tid
    )
    assert fetch_finish == pytest.approx(0.192)


def test_fig2b_independent_time(fig2):
    """§II-D: t2 = 64MB x 2 / 640MB/s = 0.20 s."""
    plan = plan_independent(fig2)
    res = FluidSimulator(fig2.cluster).run(plan.tasks)
    assert res.makespan == pytest.approx(0.20)


def test_fig2c_hybrid_halves_bottlenecks(fig2):
    """§II-E with p = 1/2: the slowest-uplink node now moves 3 sub-blocks.

    The paper computes t2 = 32MB x 3 / 640MB/s = 0.15 s for N4; our fluid
    simulation of the p = 0.5 hybrid must beat both pure schemes."""
    sim = FluidSimulator(fig2.cluster)
    t_hybrid_half = sim.run(plan_hybrid(fig2, p=0.5).tasks).makespan
    assert t_hybrid_half < 0.20  # better than IR
    # and the volume of data the slowest node uploads matches the example
    plan = plan_hybrid(fig2, p=0.5)
    n4_upload = sum(
        t.size_mb
        for t in plan.tasks
        for (src, _dst) in t.hops
        if src == 3
    )
    assert n4_upload == pytest.approx(32.0 * 3)  # 3 sub-blocks of 32 MB


def test_theorem1_optimal_split_beats_paper_example(fig2):
    """The optimal p0 must be at least as good as the paper's p = 1/2."""
    model = repair_model(fig2)
    assert model.t(model.p0) <= model.t(0.5)


def test_mds_property_statement():
    """Property 1: any k of k+m blocks decode any block."""
    code = RSCode(3, 2)
    rng = np.random.default_rng(1)
    data = rng.integers(0, 256, size=(3, 64), dtype=np.uint8)
    stripe = code.encode_stripe(data)
    import itertools

    for keep in itertools.combinations(range(5), 3):
        rebuilt = code.decode_stripe({i: stripe[i] for i in keep})
        assert np.array_equal(rebuilt, stripe)


def test_property2_linearity_of_repair():
    """Property 2: single-block repair = sum of k scaled survivor blocks,
    computable in any association order (what pipelining relies on)."""
    code = RSCode(4, 2)
    rng = np.random.default_rng(2)
    data = rng.integers(0, 256, size=(4, 64), dtype=np.uint8)
    stripe = code.encode_stripe(data)
    survivors = [0, 1, 3, 5]
    r = np.asarray(code.repair_matrix(survivors, [2]))[0]
    # left-to-right accumulation (the pipeline order)
    acc = np.zeros(64, dtype=np.uint8)
    for coeff, b in zip(r, survivors):
        gf8.addmul(acc, int(coeff), stripe[b])
    assert np.array_equal(acc, stripe[2])


def test_property3_word_granularity():
    """Property 3: decoding sub-blocks independently equals decoding whole
    blocks (same offsets decode together)."""
    from repro.ec.subblock import split_block, join_block

    code = RSCode(4, 2)
    rng = np.random.default_rng(3)
    data = rng.integers(0, 256, size=(4, 128), dtype=np.uint8)
    stripe = code.encode_stripe(data)
    p = 0.3
    upper = {i: split_block(stripe[i], p)[0] for i in range(6)}
    lower = {i: split_block(stripe[i], p)[1] for i in range(6)}
    up_dec = code.decode({i: upper[i] for i in [1, 2, 3, 4]}, [0])[0]
    low_dec = code.decode({i: lower[i] for i in [1, 2, 3, 4]}, [0])[0]
    assert np.array_equal(join_block(up_dec, low_dec), stripe[0])


def test_paper_headline_reduction_at_64_8_8():
    """Experiment 1's headline: large reductions at (64,8,8) under WLD-8x.

    The paper reports 57.5% vs CR and 64.8% vs IR on EC2; we assert the
    reproduction achieves at least 30% against both (shape, not absolute)."""
    from repro.experiments.common import build_scenario, transfer_time

    sc = build_scenario(64, 8, 8, wld="WLD-8x", seed=2023)
    t_cr = transfer_time(sc.ctx, "cr")
    t_ir = transfer_time(sc.ctx, "ir")
    t_h = transfer_time(sc.ctx, "hmbr")
    assert 1 - t_h / t_cr > 0.30
    assert 1 - t_h / t_ir > 0.30
