"""The parallel data plane: pool sharding, pipelining, engine differentials.

Twin-system differentials pin the headline contract — a coordinator whose
data plane runs through :class:`repro.parallel.ParallelRepairEngine` stores
byte-identical blocks on identical placements with the identical simulated
makespan as its serial twin, healthy *and* after a `repro.faults` storm —
plus unit coverage for the shard geometry, the inline fallback, and the
chunk-pipelining model the parallel reports carry.
"""

import numpy as np
import pytest

from repro.ec.rs import get_code
from repro.gf.batch import gf_plane_matmul
from repro.obs import Observability
from repro.parallel import (
    ParallelRepairEngine,
    WorkerPool,
    pipeline_schedule,
    resolve_workers,
    shard_bounds,
)
from repro.repair.batch import BatchRepairEngine, StripeBatchItem
from repro.system.request import RepairRequest

from tests.test_system_batch import build_system, snapshot

WORKERS = 2  # small on purpose: forks in tests should be cheap


# ------------------------------------------------------------------ #
# shard geometry
# ------------------------------------------------------------------ #
def test_shard_bounds_cover_range_and_ascend():
    bounds = shard_bounds(1000, 4)
    assert bounds[0] == 0 and bounds[-1] == 1000
    assert bounds == sorted(set(bounds))
    assert len(bounds) <= 5


def test_shard_bounds_snap_to_item_len():
    bounds = shard_bounds(7 * 96, 4, item_len=96)
    for cut in bounds[1:-1]:
        assert cut % 96 == 0
    assert bounds[-1] == 7 * 96


def test_shard_bounds_even_snap_without_item_len():
    for cut in shard_bounds(1002, 5)[1:-1]:
        assert cut % 2 == 0


def test_shard_bounds_more_shards_than_columns():
    assert shard_bounds(2, 8) == [0, 2]
    with pytest.raises(ValueError):
        shard_bounds(10, 0)


def test_resolve_workers():
    assert resolve_workers(None) >= 1
    assert resolve_workers(3) == 3
    with pytest.raises(ValueError):
        resolve_workers(0)


# ------------------------------------------------------------------ #
# the pool
# ------------------------------------------------------------------ #
def _random_problem(w=16, f=3, k=6, n=256, seed=0):
    field = get_code(k, f, w).field
    rng = np.random.default_rng(seed)
    mat = rng.integers(0, field.size, size=(f, k)).astype(field.dtype)
    plane = rng.integers(0, field.size, size=(k, n)).astype(field.dtype)
    return field, mat, plane


def test_pool_serial_fallback_is_inline():
    field, mat, plane = _random_problem()
    pool = WorkerPool(workers=1)
    out, shards = pool.decode_plane(mat, plane, field)
    assert np.array_equal(out, gf_plane_matmul(mat, plane, field))
    assert pool.stats.inline_calls == 1 and pool.stats.dispatches == 0
    assert len(shards) == 1 and shards[0].cols == plane.shape[1]
    assert pool._pool is None  # no process ever started


def test_pool_small_planes_stay_inline():
    field, mat, plane = _random_problem(n=64)
    with WorkerPool(workers=WORKERS, min_parallel_cols=1 << 12) as pool:
        out, _ = pool.decode_plane(mat, plane, field)
        assert np.array_equal(out, gf_plane_matmul(mat, plane, field))
        assert pool.stats.dispatches == 0 and pool.stats.inline_calls == 1


@pytest.mark.parametrize("w", [8, 16])
def test_pooled_decode_bit_exact(w):
    field, mat, plane = _random_problem(w=w, n=512)
    with WorkerPool(workers=WORKERS, min_parallel_cols=16) as pool:
        out, shards = pool.decode_plane(mat, plane, field)
        assert np.array_equal(out, gf_plane_matmul(mat, plane, field))
        st = pool.stats
        assert st.dispatches == 1 and st.shards == len(shards)
        assert 1 <= len(shards) <= WORKERS
        assert [s.lo for s in shards][0] == 0 and shards[-1].hi == 512
        assert 0.0 <= st.utilization(WORKERS)


def test_pooled_decode_respects_item_len():
    field, mat, plane = _random_problem(n=6 * 96)
    with WorkerPool(workers=WORKERS, min_parallel_cols=16) as pool:
        out, shards = pool.decode_plane(mat, plane, field, item_len=96)
        assert np.array_equal(out, gf_plane_matmul(mat, plane, field))
        for s in shards[:-1]:
            assert s.hi % 96 == 0


def test_pool_rejects_incompatible_shapes():
    field, mat, plane = _random_problem()
    with pytest.raises(ValueError):
        WorkerPool(workers=1).decode_plane(mat, plane[:-1], field)


def test_pool_stats_utilization_zero_cases():
    from repro.parallel.pool import PoolStats

    assert PoolStats().utilization(4) == 0.0


# ------------------------------------------------------------------ #
# the pipelining model
# ------------------------------------------------------------------ #
def test_pipeline_schedule_beats_barrier_on_staggered_arrivals():
    rep = pipeline_schedule([0, 1, 2, 3], [0.0, 1.0, 2.0, 3.0], [1.0] * 4, workers=2)
    assert rep.makespan_s < rep.barrier_makespan_s
    assert rep.saved_s == pytest.approx(rep.barrier_makespan_s - rep.makespan_s)
    assert set(rep.landed_s) == {0, 1, 2, 3}
    for slot in rep.slots:
        assert slot.start_s >= slot.ready_s
        assert slot.done_s == pytest.approx(slot.start_s + slot.cost_s)
        assert 0 <= slot.lane < 2
    assert len(rep) == 4


def test_pipeline_schedule_single_lane_serializes():
    rep = pipeline_schedule([0, 1, 2], [0.0, 0.0, 0.0], [1.0, 2.0, 3.0], workers=1)
    assert rep.makespan_s == pytest.approx(6.0)
    assert rep.barrier_makespan_s == pytest.approx(6.0)  # same arrivals: no win


def test_pipeline_schedule_validation():
    with pytest.raises(ValueError):
        pipeline_schedule([0], [0.0, 1.0], [1.0], workers=2)
    with pytest.raises(ValueError):
        pipeline_schedule([0], [0.0], [1.0], workers=0)
    with pytest.raises(ValueError):
        pipeline_schedule([0], [-1.0], [1.0], workers=1)
    empty = pipeline_schedule([], [], [], workers=3)
    assert len(empty) == 0 and empty.makespan_s == 0.0


# ------------------------------------------------------------------ #
# the engine
# ------------------------------------------------------------------ #
def _batch_items(code, n_stripes=6, block=256, seed=7):
    rng = np.random.default_rng(seed)
    failed = [1, 4, 6][: code.m - 1]
    survivors = [i for i in range(code.n) if i not in failed][: code.k]
    stripes, items = [], []
    for sid in range(n_stripes):
        data = rng.integers(0, code.field.size, size=(code.k, block)).astype(
            code.field.dtype
        )
        coded = code.encode_stripe(data)
        stripes.append(coded)
        items.append(
            StripeBatchItem(
                stripe_id=sid,
                survivors=tuple(survivors),
                failed=tuple(failed),
                sources=[coded[i] for i in survivors],
            )
        )
    return stripes, failed, items


def test_engine_bit_exact_with_serial_engine():
    code = get_code(8, 4, 16)
    stripes, failed, items = _batch_items(code)
    serial = BatchRepairEngine(code).repair_items(items)
    with ParallelRepairEngine(code, workers=WORKERS, min_parallel_cols=16) as eng:
        pooled = eng.repair_items(items)
        stats = eng.stats()
    for sid in range(len(stripes)):
        for fb in failed:
            assert np.array_equal(pooled.outputs[sid][fb], serial.outputs[sid][fb])
            assert np.array_equal(pooled.outputs[sid][fb], stripes[sid][fb])
    assert stats["workers"] == WORKERS
    assert stats["pool_dispatches"] >= 1
    assert stats["pool_shards"] >= stats["pool_dispatches"]
    assert stats["pool_busy_seconds"] >= 0.0


def test_engine_workers_one_never_forks():
    code = get_code(8, 4, 8)
    _, _, items = _batch_items(code)
    with ParallelRepairEngine(code, workers=1) as eng:
        eng.repair_items(items)
        assert eng.pool._pool is None
        assert eng.stats()["pool_dispatches"] == 0


def test_engine_pool_xor_workers():
    code = get_code(4, 2, 8)
    with WorkerPool(workers=2) as pool:
        with pytest.raises(ValueError):
            ParallelRepairEngine(code, workers=2, pool=pool)
        eng = ParallelRepairEngine(code, pool=pool)
        assert not eng._owns_pool
        eng.close()  # must NOT reap the shared pool
        _, mat, plane = _random_problem(w=8, n=32)
        out, _ = pool.decode_plane(mat, plane, code.field)
        assert out.shape == (3, 32)


def test_engine_emits_parallel_spans_and_metrics():
    code = get_code(8, 4, 16)
    _, _, items = _batch_items(code)
    obs = Observability()
    with ParallelRepairEngine(
        code, obs=obs, workers=WORKERS, min_parallel_cols=16
    ) as eng:
        eng.repair_items(items)
    names = [s.name for s in obs.tracer.spans]
    assert "parallel:decode" in names
    m = obs.metrics
    assert m.counter("parallel.calls").value >= 1
    assert m.counter("parallel.dispatches").value >= 1
    assert m.counter("parallel.shards").value >= m.counter("parallel.dispatches").value


# ------------------------------------------------------------------ #
# twin-system differentials (the tentpole contract)
# ------------------------------------------------------------------ #
def test_parallel_repair_bit_exact_with_serial_twin():
    a, b = build_system(), build_system()
    for coord in (a, b):
        coord.crash_node(3)
        coord.crash_node(7)
    ra = a.repair(RepairRequest(batched=True))
    rb = b.repair(RepairRequest(workers=WORKERS))
    try:
        data_a, place_a = snapshot(a)
        data_b, place_b = snapshot(b)
        assert data_a == data_b
        assert place_a == place_b
        # the timing plane is decoupled from the data-plane worker count
        assert rb.makespan_s == pytest.approx(ra.makespan_s, abs=1e-12)
        assert rb.per_stripe_transfer_s == ra.per_stripe_transfer_s
        assert rb.blocks_recovered == ra.blocks_recovered
        assert rb.batched and rb.workers == WORKERS
        assert rb.pipeline is not None and len(rb.pipeline) == len(rb.stripes_repaired)
        assert rb.pipeline.saved_s >= 0.0
        assert rb.plan_summary["pipeline_saved_s"] == rb.pipeline.saved_s
        # pipelined landings can only improve on the wave barrier
        assert rb.pipeline.makespan_s <= rb.pipeline.barrier_makespan_s + 1e-12
        assert all(b.scrub().values())
    finally:
        a.close()
        b.close()


def test_parallel_repair_bit_exact_after_fault_storm():
    from repro.faults.schedule import FaultSchedule

    schedule = FaultSchedule.random(
        seed=20230717, targets=list(range(8)), n_events=4, max_kills=1
    )
    a, b = build_system(seed=3), build_system(seed=3)
    try:
        for coord in (a, b):
            coord.crash_node(1)
            coord.repair(RepairRequest(faults=schedule))
        for coord in (a, b):
            victim = next(i for i in (4, 6, 8) if coord.cluster[i].alive)
            coord.crash_node(victim)
        a.repair(RepairRequest(batched=True))
        b.repair(RepairRequest(workers=WORKERS))
        data_a, place_a = snapshot(a)
        data_b, place_b = snapshot(b)
        assert data_a == data_b
        assert place_a == place_b
        assert all(b.scrub().values())
    finally:
        a.close()
        b.close()


def test_scheduler_route_with_workers_bit_exact():
    a, b = build_system(), build_system()
    for coord in (a, b):
        coord.crash_node(3)
    affected = sorted(a.layout.stripes_with_failures(a.cluster.dead_ids()))
    ra = a.repair([RepairRequest(stripes=tuple(affected))])
    rb = b.repair([RepairRequest(stripes=tuple(affected), workers=WORKERS)])
    try:
        assert snapshot(a) == snapshot(b)
        assert rb.makespan_s == pytest.approx(ra.makespan_s, abs=1e-12)
        assert rb.ok and len(rb.jobs) == 1 and rb.jobs[0].state == "done"
    finally:
        a.close()
        b.close()


def test_coordinator_caches_and_closes_engines():
    coord = build_system()
    coord.crash_node(3)
    coord.repair(RepairRequest(workers=WORKERS))
    engine = coord._parallel_engines[WORKERS]
    coord.crash_node(7)
    coord.repair(RepairRequest(workers=WORKERS))
    assert coord._parallel_engines[WORKERS] is engine  # one pool per count
    coord.close()
    assert coord._parallel_engines == {}
    coord.close()  # idempotent
