"""PlanCache under concurrent wave dispatch: a thread-stress regression.

The parallel path fans repair waves out across threads that all hit the
coordinator's one :class:`~repro.repair.batch.PlanCache`.  Before the cache
took a lock, concurrent ``plan_for`` calls could corrupt the LRU
OrderedDict mid-``move_to_end`` or lose counter bumps.  These tests hammer
the cache from many threads — lookups racing invalidations, clears, and
evictions — and assert the ledger stays conserved and every served plan is
the correct matrix for its pattern.
"""

import threading

import numpy as np
import pytest

from repro.ec.rs import get_code
from repro.repair.batch import PlanCache, build_decode_plan, pattern_key

CODE = get_code(8, 4, 8)
N_THREADS = 8
ITERS = 150


def _patterns(n=24):
    """n distinct (survivors, failed) erasure patterns for CODE."""
    pats = []
    blocks = list(range(CODE.n))
    for i in range(n):
        failed = tuple(sorted({(i + j * 5) % CODE.n for j in range(1 + i % CODE.m)}))
        survivors = tuple(b for b in blocks if b not in failed)[: CODE.k]
        if (survivors, failed) not in pats:
            pats.append((survivors, failed))
    return pats


EXPECTED = {
    (s, f): build_decode_plan(CODE, s, f).matrix for s, f in _patterns()
}


def _hammer(cache, pats, seed, errors, chaos=False):
    rng = np.random.default_rng(seed)
    for i in range(ITERS):
        s, f = pats[rng.integers(len(pats))]
        try:
            plan = cache.plan_for(CODE, s, f)
            if not np.array_equal(plan.matrix, EXPECTED[(s, f)]):
                errors.append(f"wrong matrix for {(s, f)}")
            if chaos and i % 40 == 17:
                cache.invalidate_survivor(int(rng.integers(CODE.n)))
            if chaos and i % 90 == 53:
                cache.clear()
        except Exception as exc:  # noqa: BLE001 - the regression is ANY raise
            errors.append(f"{type(exc).__name__}: {exc}")


@pytest.mark.parametrize("capacity", [4, 64])
def test_plan_cache_thread_stress_conserves_ledger(capacity):
    cache = PlanCache(capacity=capacity)
    pats = _patterns()
    errors: list[str] = []
    threads = [
        threading.Thread(target=_hammer, args=(cache, pats, t, errors))
        for t in range(N_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[:5]
    stats = cache.stats()
    # every plan_for bumps exactly one of hits/misses, even when two
    # threads race to build the same pattern (the loser serves the
    # winner's copy but keeps its miss)
    assert stats["hits"] + stats["misses"] == N_THREADS * ITERS
    assert stats["size"] <= capacity
    assert len(cache) == stats["size"]
    assert stats["misses"] >= min(len(pats), capacity)


def test_plan_cache_thread_stress_with_invalidation_chaos():
    cache = PlanCache(capacity=16)
    pats = _patterns()
    errors: list[str] = []
    threads = [
        threading.Thread(target=_hammer, args=(cache, pats, 100 + t, errors, True))
        for t in range(N_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[:5]
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == N_THREADS * ITERS
    assert stats["size"] <= 16
    assert stats["invalidations"] >= 1
    # the cache still serves correct plans after the chaos
    s, f = pats[0]
    assert np.array_equal(cache.plan_for(CODE, s, f).matrix, EXPECTED[(s, f)])


def test_racing_builders_share_one_plan_object():
    """Two threads missing the same cold pattern must converge on a single
    cached DecodePlan (first-builder-wins on insert)."""
    cache = PlanCache(capacity=8)
    s, f = _patterns()[0]
    barrier = threading.Barrier(2)
    got = []

    def build():
        barrier.wait()
        got.append(cache.plan_for(CODE, s, f))

    threads = [threading.Thread(target=build) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert cache.peek(pattern_key(CODE, s, f)) is not None
    later = cache.plan_for(CODE, s, f)
    assert all(p.matrix is later.matrix for p in got) or all(
        np.array_equal(p.matrix, later.matrix) for p in got
    )
    assert len(cache) == 1
