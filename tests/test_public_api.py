"""Public-API surface tests: the README's code must literally work."""

import numpy as np
import pytest

import repro


def test_version_and_exports():
    assert repro.__version__
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_readme_quickstart_block():
    from repro import FluidSimulator, build_scenario, plan_for

    sc = build_scenario(k=64, m=8, f=8, wld="WLD-8x")
    times = {}
    for scheme in ("cr", "ir", "hmbr"):
        plan = plan_for(sc.ctx, scheme)
        times[scheme] = FluidSimulator(sc.cluster).run(plan.tasks).makespan
    assert times["hmbr"] <= min(times["cr"], times["ir"]) + 1e-9


def test_readme_verification_block():
    from repro import FluidSimulator, PlanExecutor, Workspace, build_scenario, plan_for

    sc = build_scenario(k=8, m=4, f=2, wld="WLD-8x")
    plan = plan_for(sc.ctx, "hmbr")
    data = np.random.default_rng(0).integers(0, 256, (8, 4096), dtype=np.uint8)
    stripe = sc.ctx.code.encode_stripe(data)
    ws = Workspace()
    ws.load_stripe(sc.ctx.stripe, stripe)
    for node in sc.dead_nodes:
        ws.drop_node(node)
    PlanExecutor(ws).execute(
        plan, verify_against={b: stripe[b] for b in sc.ctx.failed_blocks}
    )


def test_subpackage_exports_importable():
    import repro.analysis as analysis
    import repro.cluster as cluster
    import repro.ec as ec
    import repro.faults as faults
    import repro.gf as gf
    import repro.obs as obs
    import repro.parallel as parallel
    import repro.repair as repair
    import repro.sched as sched
    import repro.simnet as simnet
    import repro.system as system

    modules = (
        analysis, cluster, ec, faults, gf, obs, parallel, repair, sched,
        simnet, system,
    )
    for module in modules:
        assert module.__all__, f"{module.__name__} must declare __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name}"


def test_api_surface_matches_golden():
    """The pinned surface check CI runs must pass from the suite too."""
    import subprocess
    import sys
    from pathlib import Path

    repo = Path(__file__).resolve().parent.parent
    proc = subprocess.run(
        [sys.executable, str(repo / "tools" / "check_api_surface.py"), "--check"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_request_facade_quickstart():
    """The docs/API.md headline snippet must literally work."""
    from repro import Coordinator, RepairRequest, RepairResult  # noqa: F401


def test_experiments_are_deterministic():
    """Same seeds -> byte-identical rows (EXPERIMENTS.md reproducibility)."""
    from repro.experiments.exp1 import run

    a = run(grid=[(6, 3, 2)], wlds=["WLD-4x"], seeds=(2023,))
    b = run(grid=[(6, 3, 2)], wlds=["WLD-4x"], seeds=(2023,))
    assert a == b


def test_scenario_builder_deterministic():
    from repro import build_scenario

    s1 = build_scenario(12, 4, 2, seed=7)
    s2 = build_scenario(12, 4, 2, seed=7)
    assert s1.dead_nodes == s2.dead_nodes
    assert np.array_equal(s1.dataset.uplinks, s2.dataset.uplinks)
