"""Differential harness: the metadata fast path vs byte-materializing runs.

The reliability simulator is only trustworthy if planning without bytes
times *identically* to repairing with bytes.  This suite pins that
contract three ways over random ``(k, m, f, scheme)`` draws in GF(2^8) and
GF(2^16):

* the fast path's plans/flow graphs are byte-for-byte the plans a
  materialized twin produces (``flow_signature`` equality);
* the fast path's fluid makespan equals the real byte repair's makespan to
  1e-9 relative;
* ``plan_repair(commit=True)`` leaves the metadata in exactly the state a
  real repair leaves it (placements and spare accounting);

plus the headline ordering the paper implies: HMBR ≥ IR ≥ CR durability
nines under the correlated-outage model, on common random numbers.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.gf.field import GF
from repro.reliability import (
    ReliabilitySimulator,
    ReliabilitySpec,
    build_twin,
)
from repro.repair.plan import flow_signature
from repro.system.request import RepairRequest
from tests.seeds import DEFAULT_MASTER_SEED, seed_fanout

SCHEMES = ("cr", "ir", "hmbr")


def _random_case(seed, field_w):
    """One random (k, m, f, metas, dead) differential case."""
    rng = np.random.default_rng(seed)
    k = int(rng.integers(3, 7))
    m = int(rng.integers(2, 4))
    f = int(rng.integers(1, m + 1))
    width = k + m
    n_nodes = 2 * width + int(rng.integers(0, 4))
    n_stripes = 6
    from repro.ec.stripe import StripeMeta

    metas = []
    for sid in range(n_stripes):
        place = rng.choice(n_nodes, size=width, replace=False)
        metas.append(StripeMeta(sid, k, m, tuple(int(x) for x in np.sort(place))))
    # dead nodes drawn from nodes that actually hold blocks
    holders = sorted({n for meta in metas for n in meta.placement})
    dead = [int(holders[i]) for i in rng.choice(len(holders), size=f, replace=False)]
    return dict(
        k=k,
        m=m,
        metas=metas,
        dead_nodes=dead,
        n_nodes=n_nodes,
        rack_size=4,
        bandwidth_mbps=100.0,
        block_size_mb=32.0,
        block_bytes=256,
        field=GF(field_w),
    )


@pytest.mark.parametrize("field_w", [8, 16])
@pytest.mark.parametrize("case_seed", seed_fanout(DEFAULT_MASTER_SEED, 3))
def test_fast_path_matches_byte_repair(case_seed, field_w):
    case = _random_case(case_seed + field_w, field_w)
    for scheme in SCHEMES:
        meta_coord = build_twin(**case, materialize=False)
        byte_coord = build_twin(**case, materialize=True)

        timing = meta_coord.plan_repair(scheme)
        byte_plan = byte_coord.plan_repair(scheme)

        # identical plans / flow graphs, not merely identical totals
        assert timing.flow_signature() == byte_plan.flow_signature()
        assert timing.makespan_s == byte_plan.makespan_s

        # the fluid makespan of the plan IS the byte repair's makespan
        result = byte_coord.repair(RepairRequest(scheme=scheme))
        assert math.isclose(timing.makespan_s, result.makespan_s, rel_tol=1e-9)
        assert timing.replacement_of == result.replacements
        assert timing.blocks_recovered == result.blocks_recovered


@pytest.mark.parametrize("scheme", SCHEMES)
def test_commit_reproduces_byte_repair_metadata(scheme):
    case = _random_case(DEFAULT_MASTER_SEED, 8)
    meta_coord = build_twin(**case, materialize=False)
    byte_coord = build_twin(**case, materialize=True)

    meta_coord.plan_repair(scheme, commit=True)
    byte_coord.repair(RepairRequest(scheme=scheme))

    meta_stripes = {s.stripe_id: s for s in meta_coord.layout}
    byte_stripes = {s.stripe_id: s for s in byte_coord.layout}
    for sid in range(len(case["metas"])):
        assert meta_stripes[sid].placement == byte_stripes[sid].placement
    assert meta_coord._free_spares() == byte_coord._free_spares()


def test_simulator_meta_vs_bytes_identical_event_stream():
    """Whole-simulation differential: metadata-only and byte-materializing
    trials walk the exact same event stream (times, kinds, targets)."""
    spec = ReliabilitySpec(
        k=4,
        m=2,
        scheme="hmbr",
        n_nodes=12,
        rack_size=4,
        n_spares=4,
        n_stripes=30,
        node_mttf_hours=2500.0,
        burst_rate_per_year=10.0,
        horizon_years=1.0,
        n_trials=1,
        timing="exact",
        record_events=True,
        check_invariants=True,
        twin_stripe_cap=16,
    )
    meta = ReliabilitySimulator(spec).run_trial(0)
    byte = ReliabilitySimulator(
        dataclasses.replace(spec, materialize=True)
    ).run_trial(0)
    assert meta.event_log == byte.event_log
    assert meta == byte


def test_nines_ordering_hmbr_ge_ir_ge_cr():
    """The paper's durability claim: faster multi-block repair → more nines.

    Common random numbers expose all three schemes to the identical failure
    history; only repair speed differs, so HMBR ≥ IR ≥ CR in nines (and
    strictly beats CR in lost stripes at these rates)."""
    base = ReliabilitySpec(
        k=8,
        m=2,
        n_nodes=40,
        rack_size=8,
        n_spares=8,
        n_stripes=2000,
        node_mttf_hours=2000.0,
        burst_rate_per_year=20.0,
        horizon_years=5.0,
        n_trials=4,
    )
    reports = {
        s: ReliabilitySimulator(dataclasses.replace(base, scheme=s)).run()
        for s in SCHEMES
    }
    nines = {s: r.durability_nines for s, r in reports.items()}
    lost = {s: sum(t.stripes_lost for t in r.trials) for s, r in reports.items()}
    assert nines["hmbr"] >= nines["ir"] >= nines["cr"], (nines, lost)
    assert lost["hmbr"] < lost["cr"], lost
