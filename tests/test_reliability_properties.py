"""Property suite for the durability simulator's stochastic ingredients.

Pins the contracts everything downstream leans on: seeded determinism
(same seed → byte-identical event stream), Weibull sample moments against
the closed forms, event-queue conservation/monotonicity invariants, and
correlated-burst fan-out bounded by the rack size.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.reliability import (
    ComponentLifetimes,
    EventQueue,
    ReliabilitySimulator,
    ReliabilitySpec,
    Weibull,
    exponential_interval_hours,
    sample_placements,
    wilson_interval,
)
from tests.seeds import DEFAULT_MASTER_SEED, seed_fanout

SMALL = dict(
    k=4,
    m=2,
    n_nodes=12,
    rack_size=4,
    n_spares=4,
    n_stripes=60,
    node_mttf_hours=2500.0,
    burst_rate_per_year=12.0,
    horizon_years=2.0,
    n_trials=1,
    record_events=True,
    check_invariants=True,
)


# --------------------------------------------------------------------- #
# lifetime samplers
# --------------------------------------------------------------------- #
class TestWeibull:
    def test_moments_match_closed_form(self):
        model = Weibull(shape=1.4, mttf_hours=8766.0)
        rng = np.random.default_rng(7)
        draws = model.sample(rng, size=200_000)
        assert draws.min() > 0
        assert math.isclose(float(draws.mean()), model.mean_hours(), rel_tol=0.01)
        assert math.isclose(
            float(draws.var()), model.var_hours2(), rel_tol=0.03
        )

    def test_mean_is_mttf_for_any_shape(self):
        for shape in (0.7, 1.0, 1.12, 2.5):
            assert math.isclose(
                Weibull(shape, 1000.0).mean_hours(), 1000.0
            )

    def test_shape_one_is_exponential(self):
        model = Weibull(shape=1.0, mttf_hours=500.0)
        assert math.isclose(model.scale_hours, 500.0)
        # exponential variance = mean^2
        assert math.isclose(model.var_hours2(), 500.0**2, rel_tol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            Weibull(shape=0.0, mttf_hours=100.0)
        with pytest.raises(ValueError):
            Weibull(shape=1.0, mttf_hours=-1.0)
        with pytest.raises(ValueError):
            exponential_interval_hours(np.random.default_rng(0), 0.0)


class TestComponentLifetimes:
    def test_draws_are_pure_function_of_seed_component_index(self):
        model = Weibull(1.12, 10_000.0)
        a = ComponentLifetimes(42, 5, model)
        b = ComponentLifetimes(42, 5, model)
        # interleave draws in a different order on b; per-component streams
        # must be identical regardless of global draw order
        got_a = {(j, i): a.next_lifetime_hours(j) for j in range(5) for i in range(3)}
        got_b = {}
        for i in range(3):
            for j in reversed(range(5)):
                got_b[(j, i)] = b.next_lifetime_hours(j)
        assert got_a == got_b
        assert a.draws == b.draws == [3] * 5

    def test_different_seeds_differ(self):
        model = Weibull(1.12, 10_000.0)
        a = ComponentLifetimes(1, 3, model)
        b = ComponentLifetimes(2, 3, model)
        assert a.next_lifetime_hours(0) != b.next_lifetime_hours(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ComponentLifetimes(0, 0, Weibull(1.0, 1.0))


# --------------------------------------------------------------------- #
# event queue invariants
# --------------------------------------------------------------------- #
class TestEventQueue:
    def test_pop_order_monotone_and_fifo_on_ties(self):
        q = EventQueue()
        q.push(5.0, "fail", node=1)
        q.push(2.0, "scrub")
        q.push(5.0, "burst", node=2)
        out = [q.pop() for _ in range(3)]
        assert [e.kind for e in out] == ["scrub", "fail", "burst"]
        times = [e.time_h for e in out]
        assert times == sorted(times)

    def test_conservation_counters(self):
        rng = np.random.default_rng(3)
        q = EventQueue()
        for t in rng.random(100) * 50:
            q.push(float(t), "fail")
        while len(q):
            q.pop()
        assert q.pushes == q.pops == 100

    def test_rejects_bad_events(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(-1.0, "fail")
        with pytest.raises(ValueError):
            q.push(float("nan"), "fail")
        with pytest.raises(ValueError):
            q.push(1.0, "frobnicate")

    def test_backwards_time_guard(self):
        q = EventQueue()
        q.push(10.0, "fail")
        q.pop()
        q.push(5.0, "fail")
        with pytest.raises(RuntimeError):
            q.pop()


# --------------------------------------------------------------------- #
# placement
# --------------------------------------------------------------------- #
class TestPlacements:
    def test_rows_sorted_distinct_in_range(self):
        rng = np.random.default_rng(11)
        p = sample_placements(rng, 500, width=6, n_nodes=20)
        assert p.shape == (500, 6)
        assert p.min() >= 0 and p.max() < 20
        assert (np.diff(p, axis=1) > 0).all()  # sorted => distinct

    def test_deterministic(self):
        a = sample_placements(np.random.default_rng(5), 200, 5, 15)
        b = sample_placements(np.random.default_rng(5), 200, 5, 15)
        assert (a == b).all()

    def test_width_must_fit(self):
        with pytest.raises(ValueError):
            sample_placements(np.random.default_rng(0), 1, 10, 5)


# --------------------------------------------------------------------- #
# wilson interval
# --------------------------------------------------------------------- #
class TestWilson:
    def test_zero_successes_still_bounded_away_from_zero(self):
        lo, hi = wilson_interval(0, 100)
        assert lo == 0.0 and 0.0 < hi < 0.1

    def test_contains_point_estimate_and_orders(self):
        lo, hi = wilson_interval(30, 100)
        assert lo < 0.3 < hi
        # more successes shift the interval up
        lo2, hi2 = wilson_interval(60, 100)
        assert lo2 > lo and hi2 > hi

    def test_degenerate_n(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)


# --------------------------------------------------------------------- #
# full-trial properties
# --------------------------------------------------------------------- #
class TestTrialDeterminism:
    def test_same_seed_identical_event_stream(self):
        spec = ReliabilitySpec(**SMALL)
        a = ReliabilitySimulator(spec).run_trial(0)
        b = ReliabilitySimulator(spec).run_trial(0)
        assert a.event_log == b.event_log
        assert a == b

    def test_different_trials_differ(self):
        sim = ReliabilitySimulator(ReliabilitySpec(**SMALL))
        assert sim.run_trial(0).event_log != sim.run_trial(1).event_log

    def test_seed_fanout_trials_differ(self):
        # seeds from the suite-wide fan-out give distinct histories too
        s0, s1 = seed_fanout(DEFAULT_MASTER_SEED, 2)
        a = ReliabilitySimulator(
            ReliabilitySpec(**{**SMALL, "seed": s0})
        ).run_trial(0)
        b = ReliabilitySimulator(
            ReliabilitySpec(**{**SMALL, "seed": s1})
        ).run_trial(0)
        assert a.event_log != b.event_log

    def test_scheme_does_not_change_failure_history(self):
        """Common random numbers: kill times are scheme-independent."""

        def kill_times(scheme):
            spec = dataclasses.replace(ReliabilitySpec(**SMALL), scheme=scheme)
            t = ReliabilitySimulator(spec).run_trial(0)
            # first failure of each node is repair-independent
            first = {}
            for time_h, kind, node in t.event_log:
                if kind == "fail" and node not in first:
                    first[node] = time_h
            return first

        assert kill_times("cr") == kill_times("hmbr")


class TestBurstFanout:
    def test_burst_kills_bounded_by_rack_and_fraction(self):
        spec = ReliabilitySpec(
            **{**SMALL, "burst_rate_per_year": 40.0, "burst_loss_fraction": 0.5}
        )
        t = ReliabilitySimulator(spec).run_trial(0)
        bursts = [(h, n) for h, k, n in t.event_log if k == "burst"]
        assert bursts, "burst rate high enough that bursts must occur"
        cap = max(1, round(spec.burst_loss_fraction * spec.rack_size))
        for time_h, rack in bursts:
            kills = [
                n for h, k, n in t.event_log if k == "fail" and h == time_h
            ]
            assert len(kills) <= cap <= spec.rack_size
            lo, hi = rack * spec.rack_size, (rack + 1) * spec.rack_size
            assert all(lo <= n < hi for n in kills)


class TestStateTransitions:
    def test_no_lost_or_duplicated_component_transitions(self):
        """fail/repair-done alternate per node: never two fails without a
        repair between them, never a repair for a node that didn't fail."""
        t = ReliabilitySimulator(ReliabilitySpec(**SMALL)).run_trial(0)
        down = set()
        for _, kind, node in t.event_log:
            if kind == "fail":
                assert node not in down, f"node {node} failed while down"
                down.add(node)
            elif kind == "repair-done":
                assert node in down, f"node {node} repaired while healthy"
                down.remove(node)
        assert t.n_repairs <= t.n_failures
        assert t.max_spares_in_use <= ReliabilitySpec(**SMALL).n_spares

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ReliabilitySpec(**{**SMALL, "timing": "guess"})
        with pytest.raises(ValueError):
            ReliabilitySpec(**{**SMALL, "materialize": True})
        with pytest.raises(ValueError):
            ReliabilitySpec(**{**SMALL, "k": 20, "m": 20})
        with pytest.raises(ValueError):
            ReliabilitySpec(**{**SMALL, "burst_loss_fraction": 0.0})
        with pytest.raises(ValueError):
            ReliabilitySimulator(ReliabilitySpec())  # k/m unset
