"""RepairContext validation and policy tests."""

import pytest

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.ec.stripe import Stripe
from repro.repair.context import RepairContext, make_new_node_map
from tests.conftest import make_repair_ctx


def test_new_node_map():
    assert make_new_node_map([3, 7], [10, 11]) == {3: 10, 7: 11}
    with pytest.raises(ValueError):
        make_new_node_map([3], [10, 11])
    with pytest.raises(ValueError):
        make_new_node_map([3, 7], [10, 10])


def test_basic_properties():
    ctx = make_repair_ctx(k=4, m=2, f=2)
    assert ctx.f == 2 and ctx.k == 4
    assert ctx.new_node_of(4) == 6 and ctx.new_node_of(5) == 7
    assert ctx.surviving_blocks() == [0, 1, 2, 3]
    assert ctx.chosen_survivors() == [0, 1, 2, 3]
    assert ctx.survivor_nodes() == [0, 1, 2, 3]
    assert ctx.prefix("cr") == "s0000:cr"


def test_f_bounds():
    with pytest.raises(ValueError):
        make_repair_ctx(k=4, m=2, f=3)  # f > m


def test_duplicate_failed_blocks_rejected():
    base = make_repair_ctx(k=4, m=2, f=2)
    with pytest.raises(ValueError):
        RepairContext(
            cluster=base.cluster,
            code=base.code,
            stripe=base.stripe,
            failed_blocks=[4, 4],
            new_nodes=[6, 7],
        )


def test_new_node_holding_surviving_block_rejected():
    base = make_repair_ctx(k=4, m=2, f=2)
    with pytest.raises(ValueError):
        RepairContext(
            cluster=base.cluster,
            code=base.code,
            stripe=base.stripe,
            failed_blocks=[4, 5],
            new_nodes=[0, 7],  # node 0 still stores block 0
        )


def test_dead_new_node_rejected():
    base = make_repair_ctx(k=4, m=2, f=2)
    base.cluster[6].fail()
    with pytest.raises(ValueError):
        RepairContext(
            cluster=base.cluster,
            code=base.code,
            stripe=base.stripe,
            failed_blocks=[4, 5],
            new_nodes=[6, 7],
        )


def test_unrecoverable_stripe_detected():
    """Killing more than m nodes makes chosen_survivors fail."""
    ctx = make_repair_ctx(k=4, m=2, f=2)
    ctx.cluster[0].fail()  # a third loss beyond the two failed blocks
    with pytest.raises(ValueError):
        ctx.chosen_survivors()


def test_survivor_policy_best_uplink():
    ups = [10.0, 50.0, 40.0, 30.0, 20.0, 100.0, 100.0, 100.0]
    ctx = make_repair_ctx(k=3, m=2, f=1, uplinks=ups, survivor_policy="best-uplink")
    # survivors among blocks 0..3 (block 4 failed); best uplinks: nodes 1,2,3
    assert ctx.chosen_survivors() == [1, 2, 3]
    ctx2 = make_repair_ctx(k=3, m=2, f=1, uplinks=ups, survivor_policy="first")
    assert ctx2.chosen_survivors() == [0, 1, 2]


def test_unknown_survivor_policy():
    ctx = make_repair_ctx(survivor_policy="nonsense")
    with pytest.raises(ValueError):
        ctx.chosen_survivors()


def test_pick_center_policies():
    downs = [100.0] * 6 + [50.0, 150.0]
    ctx = make_repair_ctx(k=4, m=2, f=2, downlinks=downs)
    assert ctx.pick_center("first") == 6
    assert ctx.pick_center("fastest-downlink") == 7
    with pytest.raises(ValueError):
        ctx.pick_center("nonsense")


def test_repair_matrix_shape():
    ctx = make_repair_ctx(k=5, m=3, f=2)
    r = ctx.repair_matrix()
    assert r.shape == (2, 5)
