"""Executor and workspace semantics tests."""

import numpy as np
import pytest

from repro.ec.rs import RSCode
from repro.ec.stripe import Stripe
from repro.repair.executor import PlanExecutor, Workspace
from repro.repair.plan import CombineOp, ConcatOp, RepairPlan, SliceOp, TransferOp


def empty_plan(ops, outputs=None):
    return RepairPlan(scheme="test", tasks=[], ops=ops, outputs=outputs or {})


def test_workspace_put_get_alignment():
    ws = Workspace()
    ws.put(1, "a", np.zeros(16, dtype=np.uint8))
    assert ws.get(1, "a").size == 16
    with pytest.raises(ValueError):
        ws.put(1, "bad", np.zeros(13, dtype=np.uint8))
    with pytest.raises(KeyError):
        ws.get(2, "a")


def test_workspace_load_stripe_and_drop_node():
    code = RSCode(2, 1)
    stripe = Stripe(0, 2, 1, [5, 6, 7])
    data = np.arange(32, dtype=np.uint8).reshape(2, 16)
    full = code.encode_stripe(data)
    ws = Workspace()
    ws.load_stripe(stripe, full)
    assert ws.get(6, "s0000/b01") is not None
    ws.drop_node(6)
    with pytest.raises(KeyError):
        ws.get(6, "s0000/b01")
    with pytest.raises(ValueError):
        ws.load_stripe(stripe, full[:2])


def test_slice_transfer_combine_concat_pipeline():
    ws = Workspace()
    rng = np.random.default_rng(0)
    buf = rng.integers(0, 256, size=64, dtype=np.uint8)
    ws.put(0, "src", buf)
    ops = [
        SliceOp(0, "upper", "src", 0.0, 0.5),
        SliceOp(0, "lower", "src", 0.5, 1.0),
        TransferOp(0, 1, "upper"),
        TransferOp(0, 1, "lower", rename="low2"),
        CombineOp(1, "scaled", (3,), ("upper",)),
        ConcatOp(1, "joined", ("upper", "low2")),
    ]
    report = PlanExecutor(ws).execute(empty_plan(ops))
    assert np.array_equal(ws.get(1, "joined"), buf)
    from repro.gf.field import gf8

    assert np.array_equal(ws.get(1, "scaled"), gf8.scale(3, buf[:32]))
    assert report.op_count == 6
    assert report.transfer_mb_equiv == pytest.approx(64 / 2**20)
    assert report.gf_bytes_processed == 32
    assert report.gf_bytes_by_node == {1: 32}


def test_transfer_copies_not_aliases():
    ws = Workspace()
    ws.put(0, "a", np.zeros(16, dtype=np.uint8))
    PlanExecutor(ws).execute(empty_plan([TransferOp(0, 1, "a")]))
    ws.get(1, "a")[0] = 99
    assert ws.get(0, "a")[0] == 0


def test_verification_failure_raises():
    ws = Workspace()
    ws.put(0, "a", np.zeros(16, dtype=np.uint8))
    plan = empty_plan(
        [CombineOp(0, "out", (1,), ("a",))], outputs={3: (0, "out")}
    )
    with pytest.raises(AssertionError):
        PlanExecutor(ws).execute(plan, verify_against={3: np.ones(16, dtype=np.uint8)})


def test_verification_missing_output_raises():
    ws = Workspace()
    plan = empty_plan([], outputs={})
    with pytest.raises(AssertionError):
        PlanExecutor(ws).execute(plan, verify_against={0: np.zeros(8, dtype=np.uint8)})


def test_combine_validation():
    with pytest.raises(ValueError):
        CombineOp(0, "out", (1, 2), ("a",))
    with pytest.raises(ValueError):
        CombineOp(0, "out", (), ())


def test_compute_time_accounted_per_node():
    ws = Workspace()
    rng = np.random.default_rng(1)
    ws.put(0, "x", rng.integers(0, 256, size=2**16, dtype=np.uint8))
    ws.put(1, "y", rng.integers(0, 256, size=2**16, dtype=np.uint8))
    ops = [
        CombineOp(0, "o0", (7,), ("x",)),
        CombineOp(1, "o1", (9,), ("y",)),
    ]
    report = PlanExecutor(ws).execute(empty_plan(ops))
    assert set(report.compute_seconds) == {0, 1}
    assert report.total_compute_seconds >= report.critical_compute_seconds > 0
