"""Multi-level forwarding (MLF) planner: structure, bounds, bit-exactness."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.repair._build import mlf_children
from repro.repair.executor import PlanExecutor, Workspace
from repro.repair.mlf import plan_mlf
from repro.repair.validate import validate_plan
from repro.simnet.fluid import FluidSimulator
from tests.conftest import make_repair_ctx


def test_mlf_children_heap_layout():
    ch = mlf_children(7, 2)
    assert ch[0] == [1, 2]
    assert ch[1] == [3, 4]
    assert ch[2] == [5, 6]
    assert ch[3] == []
    with pytest.raises(ValueError):
        mlf_children(4, 1)


def test_mlf_plan_structure_and_meta():
    ctx = make_repair_ctx(k=9, m=3, f=2)
    plan = plan_mlf(ctx, degree=3)
    validate_plan(plan, ctx)
    assert plan.scheme == "MLF"
    assert plan.meta["degree"] == 3
    # complete 3-ary tree over 9 survivors: depth 2
    assert plan.meta["depth"] == 2
    assert plan.meta["root"] in plan.meta["survivors"]
    # the root distributes the finished partials to each new node
    dist = [t for t in plan.tasks if t.tag.endswith(":dist")]
    assert len(dist) == ctx.f
    assert all(t.src == plan.meta["root"] for t in dist)


def test_mlf_default_degree_near_sqrt_k():
    ctx = make_repair_ctx(k=16, m=4, f=2)
    plan = plan_mlf(ctx)
    assert plan.meta["degree"] == max(2, int(round(math.sqrt(16))))


def test_mlf_shallow_critical_path_vs_ir_chain():
    """Tree depth grows ~log_d(k); an IR chain is k hops deep."""
    ctx = make_repair_ctx(k=16, m=4, f=2)
    plan = plan_mlf(ctx, degree=4)
    assert plan.meta["depth"] <= math.ceil(math.log(16, 4)) + 1
    assert plan.meta["depth"] < 16


@st.composite
def mlf_scenario(draw):
    k = draw(st.integers(min_value=2, max_value=16))
    m = draw(st.integers(min_value=1, max_value=6))
    f = draw(st.integers(min_value=1, max_value=m))
    degree = draw(st.one_of(st.none(), st.integers(min_value=2, max_value=5)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    n = k + m + f
    ups = rng.uniform(10, 250, size=n).tolist()
    downs = rng.uniform(10, 250, size=n).tolist()
    ctx = make_repair_ctx(k=k, m=m, f=f, uplinks=ups, downlinks=downs)
    return ctx, degree, seed


@settings(max_examples=20, deadline=None)
@given(mlf_scenario())
def test_mlf_bit_exact_property(scenario):
    """Random shapes: the plan validates, simulates, and decodes bit-exact."""
    ctx, degree, seed = scenario
    plan = plan_mlf(ctx, degree=degree)
    validate_plan(plan, ctx)
    assert FluidSimulator(ctx.cluster).run(plan.tasks).makespan > 0

    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(ctx.code.k, 128), dtype=np.uint8)
    full = ctx.code.encode_stripe(data)
    ws = Workspace()
    ws.load_stripe(ctx.stripe, full)
    for b in ctx.failed_blocks:
        ws.drop_node(ctx.stripe.placement[b])
    PlanExecutor(ws).execute(
        plan, verify_against={b: full[b] for b in ctx.failed_blocks}
    )


def test_mlf_per_node_upload_bounded():
    """No survivor uploads more than (f + degree - 1) block volumes.

    Each tree node sends its f running partials to its parent once; the
    root additionally distributes f finished blocks.
    """
    ctx = make_repair_ctx(k=12, m=4, f=3, block_size_mb=16.0)
    plan = plan_mlf(ctx, degree=3)
    sent = {}
    for t in plan.tasks:
        sent[t.src] = sent.get(t.src, 0.0) + t.size_mb * len(t.hops)
    bound = (ctx.f + 1) * ctx.f * ctx.block_size_mb  # loose: root dist + sends
    assert max(sent.values()) <= bound + 1e-6
