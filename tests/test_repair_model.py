"""Tests for the §III analytical model, pinned to the paper's worked numbers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.repair.model import (
    bw_multiple_to_single,
    bw_single_to_multiple,
    bw_single_to_single,
    optimal_split,
    repair_model,
    t_cr,
    t_hybrid,
    t_ir,
    t_of_p,
    volume_split,
)
from tests.conftest import make_repair_ctx

positive = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)


# ------------------------------------------------------------------ #
# §III-B1 bandwidth cases
# ------------------------------------------------------------------ #
def test_bandwidth_cases():
    assert bw_single_to_single(100, 60) == 60
    assert bw_single_to_multiple(100, 60, r=4) == 25
    assert bw_single_to_multiple(100, 20, r=4) == 20
    assert bw_multiple_to_single(100, 60, s=3) == 20
    assert bw_multiple_to_single(5, 60, s=3) == 5
    with pytest.raises(ValueError):
        bw_single_to_multiple(100, 60, r=0)
    with pytest.raises(ValueError):
        bw_multiple_to_single(100, 60, s=0)


# ------------------------------------------------------------------ #
# the paper's Figure 2 numbers
# ------------------------------------------------------------------ #
def test_fig2_centralized_stage1_is_0192(fig2):
    """§II-C: t1 = 64MB*3 / 1000MB/s = 0.192 s for the download stage."""
    model = repair_model(fig2)
    stage1 = 64.0 * 3 / 1000.0
    stage2 = 64.0 / 1000.0  # distribute P2 to the other new node
    assert model.t_cr == pytest.approx(stage1 + stage2)
    assert model.center == 5


def test_fig2_independent_is_020(fig2):
    """§II-D: t2 = 64MB*2 / 640MB/s = 0.20 s (N4's uplink is slowest)."""
    assert t_ir(fig2) == pytest.approx(0.20)


def test_fig2_hybrid_beats_both(fig2):
    model = repair_model(fig2)
    assert model.t_hmbr < model.t_cr
    assert model.t_hmbr < model.t_ir
    # the paper's p = 1/2 example gives T = max(0.128 + ..., 0.15); the
    # optimal p0 must do at least as well as any manual split
    assert model.t(model.p0) <= model.t(0.5) + 1e-12


def test_fig2_cr_without_second_stage():
    """With f = 1 there is no distribution stage (Eq. 2's second term)."""
    ctx = make_repair_ctx(k=3, m=2, f=1, uplinks=[100.0] * 6, downlinks=[100.0] * 6)
    assert t_cr(ctx) == pytest.approx(16.0 * 3 / 100.0)


# ------------------------------------------------------------------ #
# Lemma 1 / Theorem 1 properties
# ------------------------------------------------------------------ #
@given(positive, positive)
def test_lemma1_intersection_in_unit_interval(tcr, tir):
    p0 = optimal_split(tcr, tir)
    assert 0.0 < p0 < 1.0
    assert p0 * tcr == pytest.approx((1 - p0) * tir)


@given(positive, positive, st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_theorem1_p0_is_global_minimum(tcr, tir, p):
    """T(p0) <= T(p) for every p in [0, 1]."""
    p0 = optimal_split(tcr, tir)
    assert t_of_p(p0, tcr, tir) <= t_of_p(p, tcr, tir) + 1e-9


@given(positive, positive)
def test_hybrid_time_is_harmonic_combination(tcr, tir):
    t = t_hybrid(tcr, tir)
    assert t == pytest.approx(tcr * tir / (tcr + tir))
    assert t < min(tcr, tir)


def test_optimal_split_edge_cases():
    assert optimal_split(0.0, 0.0) == 0.5
    assert optimal_split(0.0, 5.0) == 1.0  # CR free -> all CR
    assert optimal_split(5.0, 0.0) == 0.0
    assert t_hybrid(0.0, 5.0) == 0.0
    with pytest.raises(ValueError):
        optimal_split(-1.0, 1.0)
    with pytest.raises(ValueError):
        t_of_p(1.5, 1.0, 1.0)


# ------------------------------------------------------------------ #
# volume split
# ------------------------------------------------------------------ #
def test_volume_split_in_unit_interval(fig2):
    p = volume_split(fig2)
    assert 0.0 <= p <= 1.0


def test_volume_split_extreme_imbalance_prefers_ir():
    """k huge and center slow: almost everything should go through IR."""
    k, m, f = 16, 2, 2
    ups = [100.0] * (k + m) + [100.0, 100.0]
    downs = [100.0] * (k + m) + [30.0, 30.0]  # slow new nodes
    ctx = make_repair_ctx(k=k, m=m, f=f, uplinks=ups, downlinks=downs)
    p = volume_split(ctx)
    assert p < 0.3


def test_model_chain_order_variants(fig2):
    """uplink-desc ordering cannot be worse than index order on Fig 2."""
    assert t_ir(fig2, "uplink-desc") <= t_ir(fig2, "index") + 1e-12


@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_volume_split_optimal_over_randomized_topologies(seed):
    """Property: over random (k, m, f) topologies the volume split stays in
    [0, 1] and its volume-model time never loses to the pure schemes
    (T(p*) <= min(T(0), T(1))).

    Also guards the near-parallel intersection fix: extreme bandwidth
    spreads produce nearly-identical slopes whose ill-conditioned crossings
    used to inject wild candidate splits.
    """
    import numpy as np

    from repro.repair.model import _volume_lines
    from repro.repair.topology import default_center

    rng = np.random.default_rng(seed)
    k = int(rng.integers(3, 9))
    m = int(rng.integers(2, 5))
    f = int(rng.integers(1, m + 1))
    n = k + m + f
    # heavy-tailed bandwidths: spreads up to ~1e6x stress the tolerance
    ups = np.exp(rng.uniform(np.log(0.01), np.log(10_000), size=n)).tolist()
    downs = np.exp(rng.uniform(np.log(0.01), np.log(10_000), size=n)).tolist()
    ctx = make_repair_ctx(k=k, m=m, f=f, uplinks=ups, downlinks=downs)

    p_star = volume_split(ctx)
    assert 0.0 <= p_star <= 1.0

    lines = _volume_lines(ctx, default_center(ctx))

    def t_vol(p):
        return max(s * p + i for s, i in lines)

    assert t_vol(p_star) <= min(t_vol(0.0), t_vol(1.0)) + 1e-9
