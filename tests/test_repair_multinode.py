"""Multi-node repair scheduling tests (§IV-C)."""

import numpy as np
import pytest

from repro.cluster.bandwidth import make_wld
from repro.cluster.node import Node
from repro.cluster.placement import place_stripes_random
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.ec.stripe import block_name
from repro.repair.executor import PlanExecutor, Workspace
from repro.repair.multinode import CenterScheduler, plan_multi_node
from repro.simnet.fluid import FluidSimulator


# ------------------------------------------------------------------ #
# LFS + LRS scheduler
# ------------------------------------------------------------------ #
def test_scheduler_least_frequently_selected_first():
    s = CenterScheduler()
    assert s.pick([1, 2, 3]) == 1  # all zero counts, lowest timestamp tie -> id
    assert s.pick([1, 2, 3]) == 2  # 1 now has count 1
    assert s.pick([1, 2, 3]) == 3
    assert s.pick([1, 2, 3]) == 1  # back to equal counts; 1 least recent


def test_scheduler_least_recently_selected_tiebreak():
    s = CenterScheduler()
    s.pick([1])  # 1: count 1, time 1
    s.pick([2])  # 2: count 1, time 2
    # both have count 1; 1 selected longer ago
    assert s.pick([1, 2]) == 1


def test_scheduler_restricted_candidates():
    s = CenterScheduler()
    for _ in range(3):
        s.pick([7])
    # 7 heavily used; fresh node wins
    assert s.pick([7, 9]) == 9
    assert s.load_of(7) == 3
    with pytest.raises(ValueError):
        s.pick([])


# ------------------------------------------------------------------ #
# multi-node planning
# ------------------------------------------------------------------ #
def multi_node_setup(k=4, m=2, n_data=16, n_stripes=12, n_dead=2, seed=0):
    n_total = n_data + n_dead
    ds = make_wld(n_total, "WLD-4x", seed=seed)
    cluster = Cluster(
        [Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])) for i in range(n_total)]
    )
    code = RSCode(k, m)
    layout = place_stripes_random(cluster, n_stripes, k, m, rng=seed, candidates=list(range(n_data)))
    rng = np.random.default_rng(seed + 1)
    dead = sorted(int(x) for x in rng.choice(n_data, size=n_dead, replace=False))
    cluster.fail_nodes(dead)
    replacement = {d: n_data + i for i, d in enumerate(dead)}
    return cluster, code, layout, dead, replacement


@pytest.mark.parametrize("scheme", ["cr", "ir", "hmbr"])
def test_multi_node_plans_cover_all_lost_blocks(scheme):
    cluster, code, layout, dead, repl = multi_node_setup()
    merged, jobs = plan_multi_node(cluster, code, layout, dead, repl, scheme=scheme, block_size_mb=8.0)
    lost = layout.stripes_with_failures(dead)
    assert {j.stripe_id for j in jobs} == set(lost)
    for job in jobs:
        assert job.failed_blocks == lost[job.stripe_id]
        assert job.center in job.new_nodes


def test_multi_node_missing_replacement_rejected():
    cluster, code, layout, dead, repl = multi_node_setup()
    del repl[dead[0]]
    with pytest.raises(ValueError):
        plan_multi_node(cluster, code, layout, dead, repl)


def test_multi_node_no_affected_stripes():
    cluster, code, layout, dead, repl = multi_node_setup()
    with pytest.raises(ValueError):
        plan_multi_node(cluster, code, layout, [], {})


def test_multi_node_unknown_scheme():
    cluster, code, layout, dead, repl = multi_node_setup()
    with pytest.raises(ValueError):
        plan_multi_node(cluster, code, layout, dead, repl, scheme="xyz")


def homogeneous_multi_node_setup(k=8, m=4, n_data=30, n_stripes=20, n_dead=4, seed=3):
    """Uniform bandwidths: center *spreading* is then always >= concentration
    (the fastest-downlink baseline degenerates to picking one fixed node)."""
    n_total = n_data + n_dead
    cluster = Cluster([Node(i, 100.0, 100.0) for i in range(n_total)])
    code = RSCode(k, m)
    layout = place_stripes_random(cluster, n_stripes, k, m, rng=seed, candidates=list(range(n_data)))
    rng = np.random.default_rng(seed + 1)
    dead = sorted(int(x) for x in rng.choice(n_data, size=n_dead, replace=False))
    cluster.fail_nodes(dead)
    replacement = {d: n_data + i for i, d in enumerate(dead)}
    return cluster, code, layout, dead, replacement


def test_enhanced_spreads_centers():
    cluster, code, layout, dead, repl = homogeneous_multi_node_setup()
    _, base_jobs = plan_multi_node(cluster, code, layout, dead, repl, scheme="cr", enhanced=False)
    _, enh_jobs = plan_multi_node(cluster, code, layout, dead, repl, scheme="cr", enhanced=True)

    def max_load(jobs):
        centers = [j.center for j in jobs]
        return max(centers.count(c) for c in set(centers))

    assert max_load(enh_jobs) <= max_load(base_jobs)


def test_enhanced_cr_is_faster_under_contention():
    cluster, code, layout, dead, repl = homogeneous_multi_node_setup()
    sim = FluidSimulator(cluster)
    base, _ = plan_multi_node(cluster, code, layout, dead, repl, scheme="cr", enhanced=False)
    enh, _ = plan_multi_node(cluster, code, layout, dead, repl, scheme="cr", enhanced=True)
    t_base = sim.run(base.tasks).makespan
    t_enh = sim.run(enh.tasks).makespan
    assert t_enh <= t_base + 1e-9


def test_global_search_records_common_p():
    cluster, code, layout, dead, repl = multi_node_setup()
    merged, _ = plan_multi_node(cluster, code, layout, dead, repl, scheme="hmbr", split="global-search")
    assert 0.0 <= merged.meta["common_p"] <= 1.0
    merged2, jobs2 = plan_multi_node(cluster, code, layout, dead, repl, scheme="hmbr", split="per-stripe")
    assert merged2.meta["common_p"] is None
    assert all(0.0 <= j.plan.meta["p0"] <= 1.0 for j in jobs2)


def test_multi_node_repairs_real_bytes_end_to_end():
    """Execute every stripe's plan on real data and verify bit-exactness."""
    cluster, code, layout, dead, repl = multi_node_setup(n_stripes=8, seed=5)
    merged, jobs = plan_multi_node(cluster, code, layout, dead, repl, scheme="hmbr", block_size_mb=8.0)
    rng = np.random.default_rng(6)
    ws = Workspace()
    originals = {}
    for stripe in layout:
        data = rng.integers(0, 256, size=(code.k, 256), dtype=np.uint8)
        full = code.encode_stripe(data)
        originals[stripe.stripe_id] = full
        ws.load_stripe(stripe, full)
    for d in dead:
        ws.drop_node(d)
    ex = PlanExecutor(ws)
    for job in jobs:
        expected = {b: originals[job.stripe_id][b] for b in job.failed_blocks}
        ex.execute(job.plan, verify_against=expected)
