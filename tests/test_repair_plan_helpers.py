"""RepairPlan helper tests: renaming, merging, traffic accounting."""

import pytest

from repro.repair.plan import RepairPlan, merge_plans, rename_plan
from repro.simnet.flows import DelayTask, Flow, PipelineFlow


def small_plan(prefix="p"):
    tasks = [
        Flow(f"{prefix}:a", 0, 1, 10.0),
        Flow(f"{prefix}:b", 1, 2, 5.0, deps=(f"{prefix}:a",)),
        PipelineFlow(f"{prefix}:c", (0, 1, 2), 4.0),
    ]
    return RepairPlan(scheme="T", tasks=tasks, ops=[], outputs={0: (2, "out")}, meta={"x": 1})


def test_total_transfer_counts_pipeline_hops():
    plan = small_plan()
    # 10 + 5 + 4 * 2 hops
    assert plan.total_transfer_mb() == pytest.approx(23.0)
    assert plan.task_ids() == ["p:a", "p:b", "p:c"]


def test_delay_tasks_carry_no_traffic():
    plan = RepairPlan("T", [DelayTask("d", 1.0)], [], {})
    assert plan.total_transfer_mb() == 0.0


def test_rename_plan_rewrites_ids_and_deps():
    renamed = rename_plan(small_plan(), "x:")
    ids = renamed.task_ids()
    assert ids == ["x:p:a", "x:p:b", "x:p:c"]
    b = next(t for t in renamed.tasks if t.task_id == "x:p:b")
    assert b.deps == ("x:p:a",)
    # original untouched
    assert small_plan().tasks[1].deps == ("p:a",)


def test_merge_plans_unique_ids():
    merged = merge_plans([small_plan("p"), small_plan("p")], scheme="M")
    ids = merged.task_ids()
    assert len(ids) == len(set(ids)) == 6
    assert merged.scheme == "M"
    assert len(merged.meta["stripes"]) == 2


def test_merged_plans_simulate_together():
    from repro.cluster.topology import Cluster

    cluster = Cluster.homogeneous(3, 100.0)
    from repro.simnet.fluid import FluidSimulator

    merged = merge_plans([small_plan("p"), small_plan("q")], scheme="M")
    res = FluidSimulator(cluster).run(merged.tasks)
    assert len(res.finish_times) == 6


def test_merged_with_combines_two_plans():
    left, right = small_plan("l"), small_plan("r")
    combo = left.merged_with(right, "L:", "R:")
    assert len(combo.tasks) == 6
    assert combo.scheme == "T+T"
    assert any(t.task_id.startswith("L:") for t in combo.tasks)
    assert any(t.task_id.startswith("R:") for t in combo.tasks)
