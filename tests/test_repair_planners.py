"""CR / IR / HMBR planner tests: structure, simulated timing, data fidelity."""

import numpy as np
import pytest

from repro.repair.centralized import plan_centralized
from repro.repair.executor import PlanExecutor
from repro.repair.hybrid import plan_hybrid
from repro.repair.independent import plan_independent
from repro.repair.model import repair_model
from repro.simnet.flows import Flow, PipelineFlow
from repro.simnet.fluid import FluidSimulator
from tests.conftest import make_repair_ctx


def run_and_verify(ctx, plan, stripe_data, seed=0):
    full, ws = stripe_data(ctx, seed=seed)
    report = PlanExecutor(ws).execute(
        plan, verify_against={b: full[b] for b in ctx.failed_blocks}
    )
    return report


# ------------------------------------------------------------------ #
# CR
# ------------------------------------------------------------------ #
def test_cr_plan_structure(fig2):
    plan = plan_centralized(fig2)
    fetches = [t for t in plan.tasks if isinstance(t, Flow) and ":fetch:" in t.task_id]
    dists = [t for t in plan.tasks if ":dist:" in t.task_id]
    assert len(fetches) == fig2.k
    assert len(dists) == fig2.f - 1
    assert all(t.dst == plan.meta["center"] for t in fetches)
    # distribution waits for the full download (decode needs all k blocks)
    assert set(dists[0].deps) == {t.task_id for t in fetches}


def test_cr_sim_matches_eq2(fig2):
    """On the Fig 2 topology the fluid simulator reproduces Equation (2)."""
    plan = plan_centralized(fig2)
    res = FluidSimulator(fig2.cluster).run(plan.tasks)
    assert res.makespan == pytest.approx(repair_model(fig2).t_cr)


def test_cr_explicit_center_validation(fig2):
    plan = plan_centralized(fig2, center=6)
    assert plan.meta["center"] == 6
    with pytest.raises(ValueError):
        plan_centralized(fig2, center=3)  # not a new node


def test_cr_repairs_real_bytes(fig2, stripe_data):
    plan = plan_centralized(fig2)
    report = run_and_verify(fig2, plan, stripe_data)
    # only the center computes in CR
    assert set(report.compute_seconds) == {plan.meta["center"]}


def test_cr_total_traffic(fig2):
    plan = plan_centralized(fig2)
    # k fetches + (f-1) distributions, one block each
    assert plan.total_transfer_mb() == pytest.approx((3 + 1) * 64.0)


# ------------------------------------------------------------------ #
# IR
# ------------------------------------------------------------------ #
def test_ir_plan_structure(fig2):
    plan = plan_independent(fig2)
    pipes = [t for t in plan.tasks if isinstance(t, PipelineFlow)]
    assert len(pipes) == fig2.f
    for pipe in pipes:
        assert len(pipe.path) == fig2.k + 1
        assert pipe.path[-1] in fig2.new_nodes
    # all chains share the survivor order
    assert pipes[0].path[:-1] == pipes[1].path[:-1]


def test_ir_sim_matches_eq3(fig2):
    plan = plan_independent(fig2)
    res = FluidSimulator(fig2.cluster).run(plan.tasks)
    assert res.makespan == pytest.approx(repair_model(fig2).t_ir)


def test_ir_repairs_real_bytes(fig2, stripe_data):
    plan = plan_independent(fig2)
    report = run_and_verify(fig2, plan, stripe_data, seed=3)
    # every survivor computed a partial and both new nodes finalized
    for node in fig2.survivor_nodes():
        assert node in report.compute_seconds


def test_ir_chain_order_option(fig2):
    plan = plan_independent(fig2, chain_order="uplink-desc")
    pipes = [t for t in plan.tasks if isinstance(t, PipelineFlow)]
    ups = [fig2.cluster[n].uplink for n in pipes[0].path[:-1]]
    assert ups == sorted(ups, reverse=True)


def test_ir_total_traffic(fig2):
    plan = plan_independent(fig2)
    # f chains x k hops x B
    assert plan.total_transfer_mb() == pytest.approx(2 * 3 * 64.0)


# ------------------------------------------------------------------ #
# HMBR
# ------------------------------------------------------------------ #
@pytest.mark.parametrize("split", ["search", "volume", "theorem1"])
def test_hmbr_repairs_real_bytes_any_split(fig2, stripe_data, split):
    plan = plan_hybrid(fig2, split=split)
    run_and_verify(fig2, plan, stripe_data, seed=4)
    assert 0.0 <= plan.meta["p0"] <= 1.0


@pytest.mark.parametrize("p", [0.0, 0.123, 0.5, 1.0])
def test_hmbr_explicit_p_still_correct(fig2, stripe_data, p):
    """Any split ratio must produce bit-exact repairs (Theorem 1 only
    affects speed, never correctness)."""
    plan = plan_hybrid(fig2, p=p)
    run_and_verify(fig2, plan, stripe_data, seed=5)
    assert plan.meta["p0"] == p


def test_hmbr_never_loses_to_pure_schemes(fig2):
    sim = FluidSimulator(fig2.cluster)
    t_cr_sim = sim.run(plan_centralized(fig2).tasks).makespan
    t_ir_sim = sim.run(plan_independent(fig2).tasks).makespan
    t_h = sim.run(plan_hybrid(fig2, split="search").tasks).makespan
    assert t_h <= min(t_cr_sim, t_ir_sim) + 1e-9


def test_hmbr_degenerate_splits_match_pure_schemes(fig2):
    """p = 0 is exactly IR; p = 1 is exactly CR (plus empty sub-plans)."""
    sim = FluidSimulator(fig2.cluster)
    t_ir_sim = sim.run(plan_independent(fig2).tasks).makespan
    t_cr_sim = sim.run(plan_centralized(fig2).tasks).makespan
    assert sim.run(plan_hybrid(fig2, p=0.0).tasks).makespan == pytest.approx(t_ir_sim)
    assert sim.run(plan_hybrid(fig2, p=1.0).tasks).makespan == pytest.approx(t_cr_sim)


def test_hmbr_meta_records_model(fig2):
    plan = plan_hybrid(fig2, split="theorem1")
    m = repair_model(fig2)
    assert plan.meta["p0"] == pytest.approx(m.p0)
    assert plan.meta["model_t_cr"] == pytest.approx(m.t_cr)
    assert plan.meta["model_t_ir"] == pytest.approx(m.t_ir)


def test_hmbr_invalid_split_rejected(fig2):
    with pytest.raises(ValueError):
        plan_hybrid(fig2, split="nonsense")
    with pytest.raises(ValueError):
        plan_hybrid(fig2, p=1.5)


def test_hmbr_tasks_are_cr_and_ir_sub_plans(fig2):
    plan = plan_hybrid(fig2, p=0.5)
    tags = {t.tag for t in plan.tasks}
    assert any("h.cr" in t for t in tags)
    assert any("h.ir" in t for t in tags)


def test_wide_stripe_hybrid_end_to_end(stripe_data):
    """A (16, 4) stripe with 4 failures, heterogeneous bandwidths."""
    rng = np.random.default_rng(9)
    n = 16 + 4 + 4
    ups = rng.uniform(25, 200, size=n).tolist()
    downs = rng.uniform(25, 200, size=n).tolist()
    ctx = make_repair_ctx(k=16, m=4, f=4, uplinks=ups, downlinks=downs)
    plan = plan_hybrid(ctx)
    run_and_verify(ctx, plan, stripe_data, seed=11)
    sim = FluidSimulator(ctx.cluster)
    t_h = sim.run(plan.tasks).makespan
    t_cr = sim.run(plan_centralized(ctx).tasks).makespan
    t_ir = sim.run(plan_independent(ctx).tasks).makespan
    assert t_h <= min(t_cr, t_ir) + 1e-9


def test_single_block_failure_works(stripe_data):
    """f = 1: HMBR still valid (CR has no distribution stage)."""
    ctx = make_repair_ctx(k=6, m=2, f=1)
    for planner in (plan_centralized, plan_independent, plan_hybrid):
        plan = planner(ctx)
        run_and_verify(ctx, plan, stripe_data, seed=13)
