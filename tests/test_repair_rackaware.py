"""Rack-aware CR, tree-pipelined IR, and rack-aware HMBR tests."""

import numpy as np
import pytest

from repro.repair.centralized import plan_centralized
from repro.repair.executor import PlanExecutor
from repro.repair.hybrid import plan_hybrid
from repro.repair.rackaware import (
    LinkUsageTracker,
    _build_repair_tree,
    plan_rack_aware_centralized,
    plan_rack_aware_hybrid,
    plan_tree_independent,
)
from repro.simnet.fluid import FluidSimulator
from tests.conftest import make_repair_ctx


def rack_ctx(k=8, m=4, f=2, rack_size=4, cross=25.0, **kw):
    return make_repair_ctx(
        k=k, m=m, f=f, rack_size=rack_size, cross=cross,
        uplinks=[100.0] * (k + m + f), **kw
    )


def verify(ctx, plan, stripe_data, seed=0):
    full, ws = stripe_data(ctx, seed=seed)
    PlanExecutor(ws).execute(plan, verify_against={b: full[b] for b in ctx.failed_blocks})


# ------------------------------------------------------------------ #
# rack-aware CR
# ------------------------------------------------------------------ #
def test_rack_cr_reduces_cross_traffic_fig4(stripe_data):
    """Figure 4's point: 8 cross blocks (plain CR) vs ~f per rack (rack CR)."""
    ctx = rack_ctx(k=8, m=4, f=2)
    sim = FluidSimulator(ctx.cluster)
    plain = sim.run(plan_centralized(ctx).tasks)
    rack = sim.run(plan_rack_aware_centralized(ctx).tasks)
    assert rack.cross_rack_mb < plain.cross_rack_mb
    verify(ctx, plan_rack_aware_centralized(ctx), stripe_data)


def test_rack_cr_paper_policy_cross_traffic_count():
    """Paper policy: every survivor rack ships exactly f intermediates."""
    ctx = rack_ctx(k=8, m=4, f=2)
    plan = plan_rack_aware_centralized(ctx, intermediate_policy="paper")
    res = FluidSimulator(ctx.cluster).run(plan.tasks)
    # survivors: blocks 0..7 + parity 8,9 -> nodes 0..9 in racks {0,1,2};
    # center (new node) is in rack 3, dist target too. cross = racks*f + dist
    survivor_racks = {ctx.cluster.rack_of(n) for n in ctx.survivor_nodes()}
    center_rack = ctx.cluster.rack_of(plan.meta["center"])
    expected = sum(
        ctx.f for r in survivor_racks if r != center_rack
    ) + sum(ctx.f for r in survivor_racks if r == center_rack) * 0
    # distribution hop may or may not cross; just bound it
    assert res.cross_rack_mb >= expected * ctx.block_size_mb - 1e-6


def test_rack_cr_adaptive_policy_never_ships_more_than_raw(stripe_data):
    ctx = rack_ctx(k=8, m=4, f=4)  # f >= rack survivor counts
    paper = plan_rack_aware_centralized(ctx, intermediate_policy="paper")
    adaptive = plan_rack_aware_centralized(ctx, intermediate_policy="adaptive")
    assert adaptive.total_transfer_mb() <= paper.total_transfer_mb() + 1e-9
    verify(ctx, adaptive, stripe_data, seed=2)
    verify(ctx, paper, stripe_data, seed=2)


def test_rack_cr_single_survivor_rack(stripe_data):
    """A rack holding a single survivor still repairs correctly."""
    ctx = make_repair_ctx(k=3, m=2, f=2, rack_size=2, cross=25.0,
                          uplinks=[100.0] * 7)
    plan = plan_rack_aware_centralized(ctx)
    verify(ctx, plan, stripe_data, seed=3)


# ------------------------------------------------------------------ #
# tree-pipelined IR
# ------------------------------------------------------------------ #
def test_tree_builder_respects_max_children():
    ctx = rack_ctx(k=8, m=4, f=1)
    tracker = LinkUsageTracker()
    parent = _build_repair_tree(
        ctx, root=ctx.new_nodes[0], survivors_nodes=ctx.survivor_nodes(),
        tracker=tracker, max_children=2,
    )
    children = {}
    for c, p in parent.items():
        children.setdefault(p, []).append(c)
    assert all(len(v) <= 2 for v in children.values())
    assert len(parent) == ctx.k  # spanning: every survivor attached


def test_tree_builder_max_children_infeasible():
    ctx = rack_ctx(k=8, m=4, f=1)
    tracker = LinkUsageTracker()
    with pytest.raises(ValueError):
        # max_children=0: nothing can ever attach
        _build_repair_tree(ctx, ctx.new_nodes[0], ctx.survivor_nodes(), tracker, 0)


def test_tree_builder_spreads_links_across_jobs():
    """Two jobs must not reuse the same directed links when alternatives exist."""
    ctx = rack_ctx(k=8, m=4, f=2)
    tracker = LinkUsageTracker()
    edges = []
    for fb in ctx.failed_blocks:
        parent = _build_repair_tree(
            ctx, ctx.new_node_of(fb), ctx.survivor_nodes(), tracker, 2
        )
        edges.append(set(parent.items()))
    # overlap far below full reuse (identical chains would overlap completely)
    overlap = len(edges[0] & edges[1])
    assert overlap < len(edges[0]) / 2


def test_tree_ir_repairs_real_bytes(stripe_data):
    ctx = rack_ctx(k=8, m=4, f=3)
    plan = plan_tree_independent(ctx)
    verify(ctx, plan, stripe_data, seed=4)


def test_tree_ir_less_congested_than_chain_ir_under_racks():
    """Figure 5's point: trees spread load over links that chains share."""
    from repro.repair.independent import plan_independent

    ctx = rack_ctx(k=8, m=4, f=2)
    sim = FluidSimulator(ctx.cluster)
    chain = sim.run(plan_independent(ctx).tasks).makespan
    tree = sim.run(plan_tree_independent(ctx).tasks).makespan
    assert tree <= chain + 1e-9


def test_link_usage_tracker_counts():
    t = LinkUsageTracker()
    assert t.usage(1, 2) == 0
    t.use(1, 2, cross=True)
    t.use(1, 2, cross=True)
    t.use(1, 3, cross=False)
    assert t.usage(1, 2) == 2
    assert t.nic_load(1, 9, cross=True) == 2  # node 1 sent 2 cross
    assert t.nic_load(9, 2, cross=True) == 2  # node 2 received 2 cross
    assert t.nic_load(1, 9, cross=False) == 1


# ------------------------------------------------------------------ #
# rack-aware HMBR
# ------------------------------------------------------------------ #
@pytest.mark.parametrize("split", ["search", "sim-theorem1"])
def test_rack_hybrid_repairs_real_bytes(stripe_data, split):
    ctx = rack_ctx(k=8, m=4, f=2)
    plan = plan_rack_aware_hybrid(ctx, split=split)
    verify(ctx, plan, stripe_data, seed=5)
    assert 0.0 <= plan.meta["p0"] <= 1.0


def test_rack_hybrid_beats_plain_hybrid_with_capped_cross(stripe_data):
    ctx = rack_ctx(k=16, m=4, f=2, rack_size=4)
    sim = FluidSimulator(ctx.cluster)
    plain = sim.run(plan_hybrid(ctx).tasks).makespan
    rack = sim.run(plan_rack_aware_hybrid(ctx).tasks).makespan
    assert rack <= plain + 1e-9


def test_rack_hybrid_invalid_split(stripe_data):
    ctx = rack_ctx()
    with pytest.raises(ValueError):
        plan_rack_aware_hybrid(ctx, split="nonsense")


def test_rack_hybrid_explicit_p(stripe_data):
    ctx = rack_ctx()
    plan = plan_rack_aware_hybrid(ctx, p=0.25)
    assert plan.meta["p0"] == 0.25
    verify(ctx, plan, stripe_data, seed=6)
