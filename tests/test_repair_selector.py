"""Automatic scheme-selection tests."""

import pytest

from repro.repair.hybrid import plan_hybrid
from repro.repair.selector import choose_scheme
from repro.simnet.dynamic import degrade_nodes
from repro.simnet.fluid import FluidSimulator
from tests.conftest import make_repair_ctx


def test_selector_returns_fastest_candidate():
    ctx = make_repair_ctx(k=16, m=4, f=2, block_size_mb=64.0)
    choice = choose_scheme(ctx)
    assert choice.scheme in choice.candidates
    assert choice.predicted_s == pytest.approx(min(choice.candidates.values()))
    # the returned plan really simulates to the predicted time
    t = FluidSimulator(ctx.cluster).run(choice.plan.tasks).makespan
    assert t == pytest.approx(choice.predicted_s)


def test_selector_multi_block_picks_hmbr_or_equal():
    """HMBR's searched split never loses, so it must win or tie."""
    ctx = make_repair_ctx(k=16, m=8, f=4, block_size_mb=64.0)
    choice = choose_scheme(ctx)
    assert choice.candidates["hmbr"] <= min(
        choice.candidates["cr"], choice.candidates["ir"]
    ) + 1e-9


def test_selector_single_block_candidates():
    ctx = make_repair_ctx(k=32, m=2, f=1, block_size_mb=64.0)
    choice = choose_scheme(ctx)
    assert set(choice.candidates) == {"star", "chain", "ppr", "hmbr"}
    # chain repair is the wide-stripe winner on uniform bandwidth
    assert choice.candidates["chain"] <= choice.candidates["star"]


def test_selector_includes_rack_variants_only_with_racks():
    flat = make_repair_ctx(k=8, m=4, f=2)
    racked = make_repair_ctx(k=8, m=4, f=2, rack_size=4, cross=25.0)
    assert "rack-hmbr" not in choose_scheme(flat).candidates
    assert "rack-hmbr" in choose_scheme(racked).candidates


def test_selector_custom_candidates_and_errors():
    ctx = make_repair_ctx(k=6, m=3, f=2)
    choice = choose_scheme(ctx, candidates={"only": plan_hybrid})
    assert choice.scheme == "only"
    with pytest.raises(ValueError):
        choose_scheme(ctx, candidates={})


def test_selector_is_dynamics_aware():
    """With survivor uplinks about to collapse, the choice shifts toward CR."""
    ctx = make_repair_ctx(k=16, m=8, f=2, block_size_mb=64.0)
    survivors = ctx.survivor_nodes()
    events = degrade_nodes(survivors, at_time=0.5, factor=16.0, cluster=ctx.cluster)
    static_choice = choose_scheme(ctx)
    dynamic_choice = choose_scheme(ctx, events=events)
    # under the collapse, IR must look much worse than it did statically
    assert dynamic_choice.candidates["ir"] > static_choice.candidates["ir"] * 2
