"""Single-block repair scheme tests (star / chain-RP / PPR)."""

import numpy as np
import pytest

from repro.repair.executor import PlanExecutor
from repro.repair.singleblock import SINGLE_BLOCK_SCHEMES, plan_chain, plan_ppr, plan_star
from repro.repair.validate import validate_plan
from repro.simnet.fluid import FluidSimulator
from tests.conftest import make_repair_ctx


@pytest.mark.parametrize("scheme", sorted(SINGLE_BLOCK_SCHEMES))
def test_single_block_schemes_repair_real_bytes(scheme, stripe_data):
    ctx = make_repair_ctx(k=8, m=2, f=1)
    plan = SINGLE_BLOCK_SCHEMES[scheme](ctx)
    validate_plan(plan, ctx)
    full, ws = stripe_data(ctx, seed=1)
    fb = ctx.failed_blocks[0]
    PlanExecutor(ws).execute(plan, verify_against={fb: full[fb]})


@pytest.mark.parametrize("scheme", sorted(SINGLE_BLOCK_SCHEMES))
def test_single_block_schemes_reject_multi_failure(scheme):
    ctx = make_repair_ctx(k=6, m=2, f=2)
    with pytest.raises(ValueError):
        SINGLE_BLOCK_SCHEMES[scheme](ctx)


def test_chain_time_independent_of_k():
    """RP's selling point: repair time does not grow with stripe width."""
    times = {}
    for k in (4, 16, 64):
        ctx = make_repair_ctx(k=k, m=2, f=1, block_size_mb=64.0)
        sim = FluidSimulator(ctx.cluster)
        times[k] = sim.run(plan_chain(ctx).tasks).makespan
    assert times[64] == pytest.approx(times[4], rel=0.01)


def test_star_time_grows_linearly_with_k():
    times = {}
    for k in (4, 16, 64):
        ctx = make_repair_ctx(k=k, m=2, f=1, block_size_mb=64.0)
        sim = FluidSimulator(ctx.cluster)
        times[k] = sim.run(plan_star(ctx).tasks).makespan
    assert times[64] == pytest.approx(times[4] * 16, rel=0.02)


def test_ppr_time_grows_logarithmically():
    """PPR's rounds scale with log2(k): (k=64)/(k=4) ~ 6/2 = 3x, not 16x."""
    times = {}
    for k in (4, 64):
        ctx = make_repair_ctx(k=k, m=2, f=1, block_size_mb=64.0)
        sim = FluidSimulator(ctx.cluster)
        times[k] = sim.run(plan_ppr(ctx).tasks).makespan
    ratio = times[64] / times[4]
    assert 2.0 <= ratio <= 4.5


def test_ppr_round_count():
    ctx = make_repair_ctx(k=16, m=2, f=1)
    plan = plan_ppr(ctx)
    # 16 holders -> 8 -> 4 -> 2 -> 1: four rounds + final forward
    assert plan.meta["rounds"] == 5


def test_ordering_wide_stripe():
    """chain beats ppr beats star on a wide stripe with uniform bandwidth."""
    ctx = make_repair_ctx(k=32, m=4, f=1, block_size_mb=64.0)
    sim = FluidSimulator(ctx.cluster)
    t_star = sim.run(plan_star(ctx).tasks).makespan
    t_ppr = sim.run(plan_ppr(ctx).tasks).makespan
    t_chain = sim.run(plan_chain(ctx).tasks).makespan
    assert t_chain < t_ppr < t_star
