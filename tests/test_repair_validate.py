"""Plan-validator tests, including fuzzing every planner against it."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.repair.centralized import plan_centralized
from repro.repair.hybrid import plan_hybrid
from repro.repair.independent import plan_independent
from repro.repair.multinode import plan_multi_node
from repro.repair.plan import CombineOp, RepairPlan, TransferOp
from repro.repair.rackaware import (
    plan_rack_aware_centralized,
    plan_rack_aware_hybrid,
    plan_tree_independent,
)
from repro.repair.validate import PlanValidationError, validate_plan
from repro.simnet.flows import Flow
from tests.conftest import make_repair_ctx


ALL_PLANNERS = [
    plan_centralized,
    plan_independent,
    plan_hybrid,
    plan_rack_aware_centralized,
    plan_tree_independent,
    plan_rack_aware_hybrid,
]


@pytest.mark.parametrize("planner", ALL_PLANNERS)
def test_every_planner_produces_valid_plans(planner):
    ctx = make_repair_ctx(k=6, m=3, f=2, rack_size=3, cross=30.0)
    validate_plan(planner(ctx), ctx)


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=10_000),
)
def test_hybrid_plans_valid_under_random_bandwidths(k, m, f, seed):
    f = min(f, m)
    rng = np.random.default_rng(seed)
    n = k + m + f
    ups = rng.uniform(20, 200, size=n).tolist()
    downs = rng.uniform(20, 200, size=n).tolist()
    ctx = make_repair_ctx(k=k, m=m, f=f, uplinks=ups, downlinks=downs)
    validate_plan(plan_hybrid(ctx), ctx)


def test_multi_node_merged_plans_valid():
    from tests.test_repair_multinode import multi_node_setup

    cluster, code, layout, dead, repl = multi_node_setup(n_stripes=6)
    merged, jobs = plan_multi_node(cluster, code, layout, dead, repl, scheme="hmbr")
    for job in jobs:
        stripe = next(s for s in layout if s.stripe_id == job.stripe_id)
        from repro.repair.context import RepairContext

        ctx = RepairContext(
            cluster=cluster,
            code=code,
            stripe=stripe,
            failed_blocks=job.failed_blocks,
            new_nodes=job.new_nodes,
        )
        validate_plan(job.plan, ctx)


# ------------------------------------------------------------------ #
# the validator catches broken plans
# ------------------------------------------------------------------ #
def test_detects_missing_buffer():
    plan = RepairPlan(
        scheme="broken",
        tasks=[],
        ops=[CombineOp(0, "out", (1,), ("nonexistent",))],
        outputs={},
    )
    with pytest.raises(PlanValidationError):
        validate_plan(plan)


def test_detects_wrong_node_read():
    plan = RepairPlan(
        scheme="broken",
        tasks=[Flow("t", 0, 1, 1.0)],
        ops=[
            TransferOp(0, 1, "x"),  # x never created on node 0
        ],
        outputs={},
    )
    with pytest.raises(PlanValidationError):
        validate_plan(plan)


def test_detects_unproduced_output():
    plan = RepairPlan(scheme="broken", tasks=[], ops=[], outputs={0: (5, "missing")})
    with pytest.raises(PlanValidationError):
        validate_plan(plan)


def test_detects_dependency_cycle():
    plan = RepairPlan(
        scheme="broken",
        tasks=[
            Flow("a", 0, 1, 1.0, deps=("b",)),
            Flow("b", 1, 2, 1.0, deps=("a",)),
        ],
        ops=[],
        outputs={},
    )
    with pytest.raises(PlanValidationError):
        validate_plan(plan)


def test_detects_view_mismatch():
    """Data view moving bytes over a link the timing view never charges."""
    ctx = make_repair_ctx(k=3, m=2, f=1)
    plan = plan_centralized(ctx)
    plan.ops.append(TransferOp(0, 1, plan.ops[0].out))  # rogue transfer
    with pytest.raises(PlanValidationError):
        validate_plan(plan, ctx)
