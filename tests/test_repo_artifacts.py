"""Guard the committed artifacts: datasets CSVs and document consistency."""

from pathlib import Path

import numpy as np
import pytest

REPO = Path(__file__).resolve().parent.parent


def test_shipped_datasets_match_canonical_generation():
    """datasets/*.csv must be exactly what the generator produces."""
    from repro.cluster.bandwidth import load_bandwidth_csv
    from repro.cluster.datasets import canonical_wld

    for name in ("WLD-2x", "WLD-4x", "WLD-8x"):
        path = REPO / "datasets" / f"{name.lower().replace('-', '_')}.csv"
        assert path.exists(), path
        shipped = load_bandwidth_csv(path, name=name)
        generated = canonical_wld(name)
        assert np.allclose(shipped.uplinks, generated.uplinks, atol=1e-3)
        assert np.allclose(shipped.downlinks, generated.downlinks, atol=1e-3)


def test_experiments_md_covers_every_paper_artifact():
    text = (REPO / "EXPERIMENTS.md").read_text()
    for marker in (
        "Table I",
        "Experiment 1 (Fig. 8)",
        "Experiment 2 (Fig. 9)",
        "Experiment 3 (Fig. 10)",
        "Experiment 4 (Fig. 11)",
        "Experiment 5 (Fig. 12)",
        "Experiment 6 (Table II)",
    ):
        assert marker in text, marker
    assert text.count("**Paper's claim.**") == text.count("**Reproduction note.**")
    assert text.count("## ") >= 13


def test_readme_commands_exist():
    """Every `python -m repro <name>` mentioned in the README is a real target."""
    import re

    from repro.__main__ import EXPERIMENTS

    text = (REPO / "README.md").read_text()
    for name in re.findall(r"python -m repro (\w+)", text):
        if name in ("all", "list"):
            continue
        assert name in EXPERIMENTS, name


def test_design_md_inventory_mentions_every_subpackage():
    text = (REPO / "DESIGN.md").read_text()
    for pkg in ("repro.gf", "repro.ec", "repro.cluster", "repro.simnet",
                "repro.repair", "repro.system", "repro.analysis",
                "repro.experiments"):
        assert pkg in text, pkg


def test_every_src_module_has_a_docstring():
    import ast

    missing = []
    for path in (REPO / "src").rglob("*.py"):
        tree = ast.parse(path.read_text())
        if ast.get_docstring(tree) is None:
            missing.append(str(path))
    assert not missing, missing


def test_every_example_has_a_main_guard():
    for path in (REPO / "examples").glob("*.py"):
        text = path.read_text()
        assert '__main__' in text, path
        assert text.startswith("#!/usr/bin/env python"), path
