"""Smoke test for the EXPERIMENTS.md generator in quick mode.

The full document is regenerated offline (`python -m repro.experiments.report`);
here we only pin the structure on heavily reduced inputs by stubbing the
expensive harnesses.
"""

from pathlib import Path

import pytest

import repro.experiments.report as report


def test_generate_quick_structure(tmp_path, monkeypatch):
    # stub the two slow harnesses (rack-aware trees, multi-node search)
    monkeypatch.setattr(
        report.exp4, "run",
        lambda **kw: [{"(k,m)": "(8,4)", "f": 2, "hmbr": 2.0, "rack_hmbr": 1.5,
                       "reduction_%": 25.0, "cross_mb_hmbr": 10.0, "cross_mb_rack": 8.0}],
    )
    monkeypatch.setattr(
        report.exp5, "run",
        lambda **kw: [{"(k,m,f)": "(8,4,2)", "stripes": 4, "baseline_s": 2.0,
                       "enhanced_s": 1.8, "reduction_%": 10.0,
                       "max_center_load_base": 3, "max_center_load_enh": 2}],
    )
    monkeypatch.setattr(
        report.exp1, "run",
        lambda **kw: [{"wld": "WLD-2x", "(k,m,f)": "(6,3,2)", "cr": 3.0, "ir": 1.5,
                       "hmbr": 1.2, "hmbr_vs_cr_%": 60.0, "hmbr_vs_ir_%": 20.0}],
    )
    monkeypatch.setattr(
        report.exp_slo, "run",
        lambda **kw: [{"slo_s": 5.0, "scheme": "hmbr", "max_k": 32,
                       "redundancy_x": 1.25, "repair_s": 4.0}],
    )
    monkeypatch.setattr(
        report.sensitivity, "run",
        lambda **kw: [{"rel_error": 0.1, "cr": 3.0, "ir": 2.0, "hmbr_oracle": 1.0,
                       "hmbr_noisy": 1.1, "noisy_p": 0.4, "regret_%": 10.0,
                       "still_beats_pure": True}],
    )
    out = report.generate(tmp_path / "EXP.md", quick=True)
    text = Path(out).read_text()
    assert text.startswith("# EXPERIMENTS")
    assert text.count("## ") == 13
    assert "Table I" in text and "Table II" in text
    assert "**Paper's claim.**" in text
    assert "**Reproduction note.**" in text
