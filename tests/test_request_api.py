"""The unified facade: RepairRequest validation, shim equivalence, invariants.

Every pre-1.1 call form (``repair(scheme_str)``, ``repair_with_faults``,
``submit_repair``/``run_pending``) must keep working behind a
``DeprecationWarning`` and stay bit-exact with the request path that
replaced it — same stored bytes, same placements, same simulated makespan.
:class:`~repro.system.request.RepairResult` invariants are pinned against
externally-measured ground truth (the ``DataBus`` byte ledger).
"""

import pytest

from repro.faults.schedule import FaultSchedule
from repro.system.request import JobOutcome, RepairRequest, RepairResult

from tests.test_system_batch import build_system, snapshot


# ------------------------------------------------------------------ #
# RepairRequest validation
# ------------------------------------------------------------------ #
def test_request_defaults_are_todays_behavior():
    req = RepairRequest()
    assert req.scheme == "hmbr" and req.verify and not req.batched
    assert req.workers == 1 and req.priority == "normal"
    assert not req.needs_scheduler()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"scheme": "raid6"},
        {"priority": "urgent"},
        {"workers": 0},
        {"arrival_s": -1.0},
        {"weight": 0.0},
        {"faults": object(), "batched": True},
        {"faults": object(), "workers": 2},
    ],
)
def test_request_rejects_bad_fields(kwargs):
    with pytest.raises(ValueError):
        RepairRequest(**kwargs)


def test_request_normalizes_stripes_and_workers():
    req = RepairRequest(stripes=[3, 1], workers=2.0, batched=False)
    assert req.stripes == (3, 1) and isinstance(req.workers, int)
    assert req.needs_scheduler()  # restricting stripes implies queueing


@pytest.mark.parametrize(
    "kwargs",
    [
        {"priority": "foreground"},
        {"weight": 2.0},
        {"arrival_s": 1.5},
        {"stripes": (0,)},
    ],
)
def test_request_scheduler_routing_predicate(kwargs):
    assert RepairRequest(**kwargs).needs_scheduler()


def test_repair_rejects_non_request_values():
    coord = build_system()
    with pytest.raises(TypeError):
        coord.repair(123)
    with pytest.raises(TypeError):
        coord.repair([])
    with pytest.raises(TypeError):
        coord.repair([RepairRequest(), "hmbr"])


def test_repair_many_allows_at_most_one_fault_carrier():
    coord = build_system()
    coord.crash_node(3)
    sched = FaultSchedule.random(seed=1, targets=[1], n_events=1, max_kills=1)
    reqs = [
        RepairRequest(faults=sched, priority="foreground"),
        RepairRequest(faults=sched, priority="background"),
    ]
    with pytest.raises(ValueError):
        coord.repair(reqs)


# ------------------------------------------------------------------ #
# shim equivalence: healthy round
# ------------------------------------------------------------------ #
def test_legacy_repair_warns_and_matches_request_path():
    a, b = build_system(), build_system()
    for coord in (a, b):
        coord.crash_node(3)
        coord.crash_node(7)
    with pytest.warns(DeprecationWarning, match="Coordinator.repair"):
        ra = a.repair(scheme="hmbr")
    rb = b.repair(RepairRequest())
    assert isinstance(rb, RepairResult)
    assert snapshot(a) == snapshot(b)
    assert rb.makespan_s == pytest.approx(ra.simulated_transfer_s, abs=1e-12)
    assert rb.per_stripe_transfer_s == ra.per_stripe_transfer_s
    assert rb.blocks_recovered == ra.blocks_recovered
    assert rb.bytes_on_wire_mb_model == pytest.approx(ra.bytes_on_wire_mb_model)
    assert rb.compute_s_total == pytest.approx(ra.compute_s_total, rel=0.5)
    assert rb.replacements == ra.replacements
    assert rb.report.scheme == "hmbr"  # the legacy report stays reachable
    assert rb.ok and [j.state for j in rb.jobs] == ["done"]


def test_legacy_positional_scheme_string_still_routes():
    coord = build_system()
    coord.crash_node(2)
    with pytest.warns(DeprecationWarning):
        report = coord.repair("cr")
    assert report.scheme == "cr"
    assert all(coord.scrub().values())


def test_legacy_batched_matches_request_batched():
    a, b = build_system(), build_system()
    for coord in (a, b):
        coord.crash_node(3)
    with pytest.warns(DeprecationWarning):
        ra = a.repair(scheme="hmbr", batched=True)
    rb = b.repair(RepairRequest(batched=True))
    assert snapshot(a) == snapshot(b)
    assert rb.batched and rb.workers == 1 and rb.pipeline is None
    assert rb.makespan_s == pytest.approx(ra.simulated_transfer_s, abs=1e-12)
    assert rb.plan_summary["pattern_groups"] == ra.pattern_groups
    assert rb.plan_summary["plan_cache"] == ra.plan_cache_stats


# ------------------------------------------------------------------ #
# shim equivalence: fault runtime
# ------------------------------------------------------------------ #
def test_legacy_repair_with_faults_matches_request_faults():
    schedule = FaultSchedule.random(
        seed=20230717, targets=list(range(8)), n_events=4, max_kills=1
    )
    a, b = build_system(seed=3), build_system(seed=3)
    for coord in (a, b):
        coord.crash_node(1)
    with pytest.warns(DeprecationWarning, match="repair_with_faults"):
        ra = a.repair_with_faults(schedule, scheme="hmbr")
    rb = b.repair(RepairRequest(faults=schedule))
    assert snapshot(a) == snapshot(b)
    assert rb.makespan_s == pytest.approx(ra.simulated_transfer_s, abs=1e-12)
    assert rb.blocks_recovered == ra.blocks_recovered
    assert rb.plan_summary["rounds"] == ra.rounds
    assert rb.plan_summary["retries"] == ra.retries
    assert rb.plan_summary["replans"] == ra.replans
    assert rb.report.attempts == ra.attempts
    # the shim itself returns the historical report type, via the new path
    c = build_system(seed=3)
    c.crash_node(1)
    with pytest.warns(DeprecationWarning):
        rc = c.repair_with_faults(schedule, scheme="hmbr")
    assert type(rc) is type(ra)
    assert rc.simulated_transfer_s == pytest.approx(ra.simulated_transfer_s, abs=1e-12)


# ------------------------------------------------------------------ #
# shim equivalence: the scheduler
# ------------------------------------------------------------------ #
def test_legacy_submit_run_matches_request_list():
    a, b = build_system(), build_system()
    for coord in (a, b):
        coord.crash_node(3)
        coord.crash_node(7)
    affected = sorted(a.layout.stripes_with_failures(a.cluster.dead_ids()))
    assert len(affected) >= 2
    first, second = tuple(affected[::2]), tuple(affected[1::2])
    with pytest.warns(DeprecationWarning, match="submit_repair"):
        a.submit_repair(stripes=first, priority="foreground")
    with pytest.warns(DeprecationWarning):
        a.submit_repair(stripes=second, priority="background")
    with pytest.warns(DeprecationWarning, match="run_pending"):
        ra = a.run_pending()
    rb = b.repair(
        [
            RepairRequest(stripes=first, priority="foreground"),
            RepairRequest(stripes=second, priority="background"),
        ]
    )
    assert snapshot(a) == snapshot(b)
    assert rb.makespan_s == pytest.approx(ra.makespan_s, abs=1e-12)
    assert rb.blocks_recovered == ra.blocks_recovered
    assert rb.plan_summary["waves"] == ra.waves
    assert rb.ok and len(rb.jobs) == 2
    assert {j.priority for j in rb.jobs} == {"foreground", "background"}
    assert all(isinstance(j, JobOutcome) and j.state == "done" for j in rb.jobs)
    assert sorted(rb.stripes_repaired) == affected


def test_single_scheduled_request_routes_through_scheduler():
    coord = build_system()
    coord.crash_node(3)
    res = coord.repair(RepairRequest(priority="foreground"))
    assert len(res.jobs) == 1 and res.jobs[0].priority == "foreground"
    assert res.jobs[0].wave is not None
    assert res.plan_summary["waves"] >= 1
    assert all(coord.scrub().values())


# ------------------------------------------------------------------ #
# RepairResult invariants
# ------------------------------------------------------------------ #
def test_result_bytes_moved_equals_bus_delta():
    coord = build_system()
    coord.crash_node(3)
    before = coord.bus.total_bytes()
    res = coord.repair(RepairRequest())
    assert res.bytes_moved == coord.bus.total_bytes() - before
    assert res.bytes_moved > 0
    # a second round with nothing dead moves nothing
    before = coord.bus.total_bytes()
    res2 = coord.repair(RepairRequest())
    assert res2.bytes_moved == 0 and res2.stripes_repaired == []


def test_result_bytes_moved_equals_bus_delta_on_every_route():
    sched = FaultSchedule.random(seed=5, targets=list(range(8)), n_events=2, max_kills=1)
    for req in (
        RepairRequest(batched=True),
        RepairRequest(priority="background"),
        RepairRequest(faults=sched),
    ):
        coord = build_system()
        coord.crash_node(3)
        before = coord.bus.total_bytes()
        res = coord.repair(req)
        assert res.bytes_moved == coord.bus.total_bytes() - before
        assert res.request is req and res.ok


def test_result_carries_request_and_stripe_accounting():
    coord = build_system()
    coord.crash_node(3)
    req = RepairRequest()
    res = coord.repair(req)
    assert res.request is req
    assert sorted(res.per_stripe_transfer_s) == sorted(res.stripes_repaired)
    assert res.makespan_s == pytest.approx(
        max(res.per_stripe_transfer_s.values()), abs=1e-12
    )
    assert res.jobs[0].stripes == tuple(res.stripes_repaired)
