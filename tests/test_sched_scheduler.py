"""repro.sched: job lifecycle, admission control, concurrent repair scheduling.

The load-bearing properties, per the design:

* **sequential equivalence** — one submitted job produces bit-identical
  repaired blocks and a makespan equal (to float precision) to a plain
  ``Coordinator.repair`` on a twin system;
* **isolation** — equal-priority jobs with disjoint node footprints finish
  exactly as if each ran alone;
* **weighted sharing** — jobs contending on shared nodes split bandwidth by
  priority weight; the merged scheduler simulation matches a reference
  simulation built independently from the same plans;
* **fault tolerance** — a job whose helpers die mid-repair is re-planned
  through the journal/backoff machinery; an unrecoverable job fails alone.
"""

import numpy as np
import pytest

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.ec.stripe import Stripe, block_name
from repro.faults.schedule import FaultSchedule
from repro.obs.session import Observability
from repro.repair.context import RepairContext
from repro.repair.plan import rename_plan, reweighted
from repro.sched.admission import AdmissionController, AdmissionPolicy
from repro.sched.job import (
    ADMITTED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    PRIORITY_WEIGHTS,
    RepairJob,
    weight_for,
)
from repro.sched.scheduler import RepairScheduler
from repro.simnet.fluid import FluidSimulator
from repro.system.coordinator import Coordinator, _PLANNERS


# --------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------- #
def uniform_system(n_data=12, n_spare=4, k=4, m=2, bw=100.0, block_bytes=2048, rack_size=None):
    """A coordinator over identical-bandwidth nodes (timing is symmetric)."""
    nodes = []
    for i in range(n_data):
        rack = i // rack_size if rack_size else 0
        nodes.append(Node(i, bw, bw, rack=rack))
    coord = Coordinator(Cluster(nodes), RSCode(k, m), block_bytes=block_bytes,
                        block_size_mb=16.0, rng=0)
    for j in range(n_spare):
        i = n_data + j
        rack = i // rack_size if rack_size else 0
        coord.add_spare(Node(i, bw, bw, rack=rack))
    return coord


def place_stripe(coord, placement, seed):
    """Encode one random stripe and pin its blocks to ``placement``."""
    k, m = coord.code.k, coord.code.m
    rng = np.random.default_rng(seed)
    blocks = rng.integers(0, 256, size=(k, coord.block_bytes), dtype=np.uint8)
    coded = coord.code.encode_stripe(blocks)
    sid = coord._next_stripe_id
    coord._next_stripe_id += 1
    coord.layout.add(Stripe(sid, k, m, list(placement)))
    for b, node in enumerate(placement):
        coord.agents[node].store_block(block_name(sid, b), coded[b])
    return sid


def snapshot_blocks(coord):
    out = {}
    for stripe in coord.layout:
        for b, node in enumerate(stripe.placement):
            out[(stripe.stripe_id, b)] = coord.agents[node].read_block(
                block_name(stripe.stripe_id, b)
            ).copy()
    return out


def assert_bit_exact(coord, originals):
    for stripe in coord.layout:
        for b, node in enumerate(stripe.placement):
            agent = coord.agents[node]
            assert agent.alive
            got = agent.read_block(block_name(stripe.stripe_id, b))
            assert np.array_equal(got, originals[(stripe.stripe_id, b)]), (
                f"stripe {stripe.stripe_id} block {b} differs"
            )


def payload(nbytes, seed=0):
    return np.random.default_rng(seed).integers(0, 256, size=nbytes, dtype=np.uint8).tobytes()


def wld_system(seed=0, n_data=18, n_spare=4, k=4, m=2, block_bytes=2048):
    """A heterogeneous-bandwidth system (same shape as the coordinator tests)."""
    from repro.cluster.bandwidth import make_wld

    ds = make_wld(n_data + n_spare, "WLD-4x", seed=seed)
    nodes = [Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])) for i in range(n_data)]
    coord = Coordinator(Cluster(nodes), RSCode(k, m), block_bytes=block_bytes,
                        block_size_mb=16.0, rng=seed)
    for j in range(n_spare):
        i = n_data + j
        coord.add_spare(Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])))
    return coord


# --------------------------------------------------------------------- #
# RepairJob lifecycle
# --------------------------------------------------------------------- #
def test_job_lifecycle_legal_path():
    job = RepairJob("job0")
    assert job.state == QUEUED
    job.transition(ADMITTED)
    job.transition(RUNNING)
    job.transition(DONE)
    assert job.state == DONE


@pytest.mark.parametrize("path", [
    [RUNNING],                      # queued cannot skip admission
    [ADMITTED, DONE],               # admitted cannot skip running
    [ADMITTED, RUNNING, DONE, FAILED],  # done is terminal
    [FAILED, ADMITTED],             # failed is terminal
])
def test_job_lifecycle_illegal_edges(path):
    job = RepairJob("job0")
    with pytest.raises(ValueError, match="illegal transition"):
        for state in path:
            job.transition(state)


def test_job_validation():
    with pytest.raises(ValueError, match="unknown priority"):
        RepairJob("j", priority="urgent")
    with pytest.raises(ValueError, match="weight"):
        RepairJob("j", weight=0.0)
    with pytest.raises(ValueError, match="arrival_s"):
        RepairJob("j", arrival_s=-1.0)


def test_priority_weights():
    assert weight_for("foreground") == PRIORITY_WEIGHTS["foreground"] == 4.0
    assert weight_for("normal") == 1.0
    assert weight_for("background") == 0.25
    assert weight_for("background", override=2.5) == 2.5
    with pytest.raises(ValueError):
        weight_for("nope")
    with pytest.raises(ValueError):
        weight_for("normal", override=-1.0)
    # admission rank: foreground before normal before background, FIFO within
    fg = RepairJob("a", priority="foreground", seq=9)
    bg = RepairJob("b", priority="background", seq=0)
    n1 = RepairJob("c", priority="normal", seq=1)
    n2 = RepairJob("d", priority="normal", seq=2)
    ranked = sorted([bg, n2, fg, n1], key=RepairJob.priority_rank)
    assert [j.job_id for j in ranked] == ["a", "c", "d", "b"]


# --------------------------------------------------------------------- #
# admission control
# --------------------------------------------------------------------- #
def test_admission_policy_validation():
    with pytest.raises(ValueError, match="max_inflight_per_node"):
        AdmissionPolicy(max_inflight_per_node=0)
    with pytest.raises(ValueError, match="max_inflight_total"):
        AdmissionPolicy(max_inflight_total=-1)
    AdmissionPolicy(max_inflight_per_node=None)  # uncapped is fine


def test_admission_controller_caps():
    cluster = Cluster([Node(i, 1.0, 1.0, rack=i // 2) for i in range(6)])
    ctl = AdmissionController(
        cluster,
        AdmissionPolicy(max_inflight_per_node=1, max_inflight_per_rack=2,
                        max_inflight_total=3),
    )
    j = [RepairJob(f"j{i}") for i in range(5)]
    assert ctl.try_admit(j[0], {0, 1})
    assert not ctl.try_admit(j[1], {1, 2}), "node 1 is at its per-node cap"
    assert ctl.try_admit(j[1], {2, 3})
    # rack 0 = nodes {0,1} already hosts j0; rack cap 2 still allows one more
    assert ctl.try_admit(j[2], {4})
    assert ctl.inflight_total == 3
    assert not ctl.try_admit(j[3], {5}), "total cap reached"
    ctl.reset_wave()
    assert ctl.try_admit(j[3], {5}), "a new wave starts from zero"


def test_admission_rack_cap():
    cluster = Cluster([Node(i, 1.0, 1.0, rack=0) for i in range(4)])
    ctl = AdmissionController(cluster, AdmissionPolicy(
        max_inflight_per_node=None, max_inflight_per_rack=1))
    assert ctl.try_admit(RepairJob("a"), {0})
    assert not ctl.try_admit(RepairJob("b"), {1}), "same rack, cap 1"


# --------------------------------------------------------------------- #
# sequential equivalence: one job == Coordinator.repair
# --------------------------------------------------------------------- #
def test_single_job_matches_plain_repair():
    a = wld_system()
    a.write("f1", payload(120_000, 1))
    counts = a.layout.blocks_per_node()
    victim = max(counts, key=counts.get)
    a.crash_node(victim)
    report_a = a.repair()

    b = wld_system()
    b.write("f1", payload(120_000, 1))
    b.crash_node(victim)
    job = b.submit_repair()
    report_b = b.run_pending()

    assert job.state == DONE
    assert report_b.waves == 1
    assert report_b.makespan_s == pytest.approx(report_a.simulated_transfer_s, abs=1e-9)
    assert job.per_stripe_transfer_s == pytest.approx(report_a.per_stripe_transfer_s, abs=1e-9)
    assert report_b.blocks_recovered == report_a.blocks_recovered
    assert report_b.bytes_on_wire_mb_model == pytest.approx(report_a.bytes_on_wire_mb_model)
    # placements identical, repaired bytes bit-identical
    for sa, sb in zip(a.layout, b.layout):
        assert list(sa.placement) == list(sb.placement)
        for blk, node in enumerate(sa.placement):
            name = block_name(sa.stripe_id, blk)
            assert np.array_equal(
                a.agents[node].store.get(name), b.agents[node].store.get(name)
            )
    assert b.read("f1") == payload(120_000, 1)


def test_empty_queue_is_a_noop():
    coord = uniform_system()
    report = coord.run_pending()
    assert report.waves == 0
    assert report.jobs == []
    assert report.makespan_s == 0.0


def test_job_with_nothing_to_repair_completes_trivially():
    coord = uniform_system()
    place_stripe(coord, range(6), seed=1)
    job = coord.submit_repair()  # no dead nodes anywhere
    report = coord.run_pending()
    assert job.state == DONE
    assert job.finish_s == 0.0
    assert job.stripes_repaired == []
    assert report.blocks_recovered == 0


# --------------------------------------------------------------------- #
# isolation: disjoint footprints run as if alone
# --------------------------------------------------------------------- #
def _disjoint_pair_system():
    coord = uniform_system(n_data=12, n_spare=4)
    s0 = place_stripe(coord, [0, 1, 2, 3, 4, 5], seed=1)
    s1 = place_stripe(coord, [6, 7, 8, 9, 10, 11], seed=2)
    coord.crash_node(0)
    coord.crash_node(6)
    return coord, s0, s1


def test_disjoint_equal_priority_jobs_finish_as_if_alone():
    coord, s0, s1 = _disjoint_pair_system()
    j0 = coord.submit_repair(stripes=[s0])
    j1 = coord.submit_repair(stripes=[s1])
    report = coord.run_pending()
    assert report.waves == 1 and j0.state == DONE and j1.state == DONE

    # twin A repairs only stripe 0; twin B only stripe 1
    alone = {}
    for sid in (s0, s1):
        twin, t0, t1 = _disjoint_pair_system()
        job = twin.submit_repair(stripes=[sid])
        twin.run_pending()
        alone[sid] = job.finish_s
    assert j0.finish_s == pytest.approx(alone[s0], abs=1e-9)
    assert j1.finish_s == pytest.approx(alone[s1], abs=1e-9)


# --------------------------------------------------------------------- #
# weighted sharing on a contended footprint
# --------------------------------------------------------------------- #
def test_weighted_jobs_match_reference_merged_simulation():
    """4 jobs on the same nodes: the scheduler's merged run must equal a
    reference merged simulation built directly from the planners, and the
    weight-4 job must beat the weight-1 jobs."""
    def build():
        coord = uniform_system(n_data=6, n_spare=2)
        sids = [place_stripe(coord, range(6), seed=10 + i) for i in range(4)]
        coord.crash_node(0)
        return coord, sids

    coord, sids = build()
    sch = RepairScheduler(coord, AdmissionPolicy(max_inflight_per_node=None))
    coord._sched = sch
    priorities = ["foreground", "normal", "normal", "normal"]
    jobs = [
        coord.submit_repair(stripes=[sid], priority=pri)
        for sid, pri in zip(sids, priorities)
    ]
    report = coord.run_pending()
    assert report.waves == 1
    assert all(j.state == DONE for j in jobs)

    # reference: identical contexts/plans merged by hand, simulated directly
    ref, ref_sids = build()
    free = ref._free_spares()
    replacement_of = ref._assign_spares([0], free)
    merged = []
    for i, sid in enumerate(ref_sids):
        stripe = next(s for s in ref.layout if s.stripe_id == sid)
        failed = stripe.failed_blocks([0])
        ctx = RepairContext(
            cluster=ref.cluster, code=ref.code, stripe=stripe,
            failed_blocks=failed,
            new_nodes=[replacement_of[0]] * len(failed),
            block_size_mb=ref.block_size_mb,
        )
        center = ref.center_scheduler.pick(ctx.new_nodes)
        plan = _PLANNERS["hmbr"](ctx, center)
        plan = reweighted(plan, weight_for(priorities[i]))
        merged.extend(rename_plan(plan, f"job{i}:p0:").tasks)
    sim = FluidSimulator(ref.cluster).run(merged)
    for i, job in enumerate(jobs):
        assert job.finish_s == pytest.approx(sim.finish_of(f"job{i}"), abs=1e-9)

    # the foreground job outruns every weight-1 competitor; the three
    # symmetric normal jobs tie
    fg, others = jobs[0], jobs[1:]
    assert all(fg.finish_s < o.finish_s for o in others)
    assert max(o.finish_s for o in others) == pytest.approx(
        min(o.finish_s for o in others), abs=1e-9
    )
    assert_all_repaired(coord)


def assert_all_repaired(coord):
    dead = coord.cluster.dead_ids()
    assert coord.layout.stripes_with_failures(dead) == {}


# --------------------------------------------------------------------- #
# waves, caps, and priority ordering
# --------------------------------------------------------------------- #
def test_total_cap_serializes_jobs_and_respects_priority():
    coord = uniform_system(n_data=6, n_spare=2)
    sids = [place_stripe(coord, range(6), seed=20 + i) for i in range(2)]
    coord.crash_node(0)
    sch = RepairScheduler(coord, AdmissionPolicy(max_inflight_total=1))
    coord._sched = sch
    jn = sch.submit(stripes=[sids[0]])                      # normal, submitted first
    jf = sch.submit(stripes=[sids[1]], priority="foreground")
    report = sch.run_pending()
    assert report.waves == 2
    assert (jf.wave, jn.wave) == (1, 2), "foreground admits first despite FIFO order"
    assert jn.queue_wait_waves == 1 and jf.queue_wait_waves == 0
    # wave 2 starts where wave 1 ended: the global clock is cumulative
    assert jn.finish_s > jf.finish_s
    assert jn.admitted_s == pytest.approx(jf.finish_s, abs=1e-9)
    assert_all_repaired(coord)


def test_per_node_cap_defers_overlapping_jobs():
    coord = uniform_system(n_data=6, n_spare=2)
    sids = [place_stripe(coord, range(6), seed=30 + i) for i in range(3)]
    coord.crash_node(0)
    sch = RepairScheduler(coord, AdmissionPolicy(max_inflight_per_node=2))
    coord._sched = sch
    jobs = [sch.submit(stripes=[sid]) for sid in sids]
    report = sch.run_pending()
    assert report.waves == 2
    assert sorted(j.wave for j in jobs) == [1, 1, 2]
    assert_all_repaired(coord)


def test_duplicate_stripe_claims_resolve_first_come():
    """Two jobs naming the same stripe: the first repairs it, the second
    completes without redoing the work."""
    coord = uniform_system(n_data=6, n_spare=2)
    sid = place_stripe(coord, range(6), seed=40)
    coord.crash_node(0)
    j0 = coord.submit_repair(stripes=[sid])
    j1 = coord.submit_repair(stripes=[sid])
    coord.run_pending()
    assert j0.state == DONE and j0.stripes_repaired == [sid]
    assert j1.state == DONE and j1.stripes_repaired == []
    assert_all_repaired(coord)


def test_arrival_delay_gates_a_jobs_flows():
    coord = uniform_system(n_data=6, n_spare=2)
    sid = place_stripe(coord, range(6), seed=50)
    coord.crash_node(0)
    job = coord.submit_repair(stripes=[sid], arrival_s=3.0)
    report = coord.run_pending()

    twin = uniform_system(n_data=6, n_spare=2)
    tsid = place_stripe(twin, range(6), seed=50)
    twin.crash_node(0)
    tjob = twin.submit_repair(stripes=[tsid])
    twin.run_pending()

    assert job.finish_s == pytest.approx(3.0 + tjob.finish_s, abs=1e-9)
    assert report.makespan_s >= 3.0


# --------------------------------------------------------------------- #
# fault-tolerant scheduling
# --------------------------------------------------------------------- #
def test_jobs_survive_helper_death_via_replan():
    coord = wld_system(n_spare=6)
    coord.write("f1", payload(120_000, 2))
    originals = snapshot_blocks(coord)
    counts = coord.layout.blocks_per_node()
    victim = max(counts, key=counts.get)
    helper = next(n for n in sorted(counts) if n != victim)
    coord.crash_node(victim)
    sids = sorted(coord.layout.stripes_with_failures(coord.cluster.dead_ids()))
    half = len(sids) // 2
    j0 = coord.submit_repair(stripes=sids[:half])
    j1 = coord.submit_repair(stripes=sids[half:])
    faults = FaultSchedule.from_tuples([(0.0005, "kill", helper)])
    report = coord.run_pending(faults=faults)
    assert j0.state == DONE and j1.state == DONE
    assert_bit_exact_surviving(coord, originals)
    assert coord.read("f1") == payload(120_000, 2)
    assert report.blocks_recovered >= len(sids)


def assert_bit_exact_surviving(coord, originals):
    """Every block whose stripe was repaired (node alive) matches the
    original bytes; blocks orphaned on dead nodes are skipped."""
    for stripe in coord.layout:
        for b, node in enumerate(stripe.placement):
            agent = coord.agents[node]
            if not agent.alive:
                continue
            name = block_name(stripe.stripe_id, b)
            if not agent.store.has(name):
                continue
            assert np.array_equal(
                agent.read_block(name), originals[(stripe.stripe_id, b)]
            )


def test_unrecoverable_job_fails_without_sinking_its_peers():
    coord = uniform_system(n_data=12, n_spare=4)
    doomed = place_stripe(coord, [0, 1, 2, 3, 4, 5], seed=60)
    healthy = place_stripe(coord, [6, 7, 8, 9, 10, 11], seed=61)
    coord.crash_node(0)
    coord.crash_node(6)
    j_doomed = coord.submit_repair(stripes=[doomed])
    j_ok = coord.submit_repair(stripes=[healthy])
    # two more of the doomed stripe's nodes die before any transfer: three
    # lost blocks with m=2 is unrecoverable
    faults = FaultSchedule.from_tuples([(0.0, "kill", 1), (0.0, "kill", 2)])
    report = coord.run_pending(faults=faults)
    assert j_doomed.state == FAILED
    assert "StripeUnrecoverable" in j_doomed.error
    assert j_ok.state == DONE and j_ok.stripes_repaired == [healthy]
    assert len(report.failed) == 1 and len(report.done) == 1


# --------------------------------------------------------------------- #
# coordinator facade + observability
# --------------------------------------------------------------------- #
def test_sched_property_is_lazy_and_sticky():
    coord = uniform_system()
    assert coord._sched is None
    sch = coord.sched
    assert coord.sched is sch
    job = coord.submit_repair(stripes=[])
    assert sch.jobs == [job] and sch.queue_depth == 1


def test_obs_spans_and_metrics():
    coord = uniform_system(n_data=6, n_spare=2)
    sids = [place_stripe(coord, range(6), seed=70 + i) for i in range(2)]
    coord.crash_node(0)
    obs = Observability().attach(coord)
    for sid in sids:
        coord.submit_repair(stripes=[sid])
    report = coord.run_pending()

    snap = obs.metrics.snapshot()
    assert snap["counters"]["sched.jobs_submitted"] == 2
    assert snap["counters"]["sched.jobs_admitted"] == 2
    assert snap["counters"]["sched.jobs_done"] == 2
    assert snap["counters"].get("sched.jobs_failed", 0) == 0
    assert snap["counters"]["sched.waves"] == report.waves
    assert snap["gauges"]["sched.queue_depth"] == 0
    assert snap["histograms"]["sched.job_makespan_s"]["count"] == 2

    spans = obs.tracer.find(cat="sched")
    names = {s.name for s in spans}
    assert "sched.run_pending" in names
    assert "sched.wave:1" in names
    assert {"sched.job:job0", "sched.job:job1"} <= names
    # per-job sim-domain spans cover [admitted, finish] on the global clock
    sim_spans = {s.name: s for s in obs.tracer.find(cat="sched.sim")}
    for job in report.jobs:
        span = sim_spans[f"sched.job:{job.job_id}"]
        assert span.t0 == pytest.approx(job.admitted_s)
        assert span.t1 == pytest.approx(job.finish_s)


def test_report_aggregates():
    coord = uniform_system(n_data=6, n_spare=2)
    sids = [place_stripe(coord, range(6), seed=80 + i) for i in range(2)]
    coord.crash_node(0)
    for sid in sids:
        coord.submit_repair(stripes=[sid])
    report = coord.run_pending()
    assert report.blocks_recovered == 2
    assert report.bytes_on_wire_mb_model > 0
    assert report.queue_depth_after == 0
    assert report.n_rate_updates > 0
    assert set(report.per_job_finish_s) == {"job0", "job1"}
    assert report.makespan_s == pytest.approx(max(report.per_job_finish_s.values()))
