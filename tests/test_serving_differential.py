"""Differential tests: degraded reads are bit-exact with healthy reads.

ISSUE 6 satellite 2.  For randomized (k, m, f, erasure pattern,
block size) in both GF(2^8) and GF(2^16), a read served through the
degraded path (first-k-survivors decode via the shared
:class:`~repro.repair.batch.PlanCache` / :class:`~repro.repair.batch.
BatchRepairEngine`) must return exactly the bytes a healthy read returned
before the failures — healthy, mid-fault-storm, and after repair.  Cases
fan out from the suite-wide master seed (:mod:`tests.seeds`).
"""

import numpy as np
import pytest

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.ec.stripe import Stripe, block_name
from repro.faults.errors import StripeUnrecoverable
from repro.gf.field import GF
from repro.system.coordinator import Coordinator
from repro.system.request import RepairRequest
from repro.workload import ServingPlane, WorkloadSpec
from tests.seeds import DEFAULT_MASTER_SEED, seed_fanout

CASE_SEEDS = seed_fanout(DEFAULT_MASTER_SEED, 6)


def _random_case(seed):
    """Random (k, m, f, block_bytes) with f <= m (per-stripe recoverable)."""
    rng = np.random.default_rng(seed)
    k = int(rng.integers(2, 7))
    m = int(rng.integers(2, 5))
    f = int(rng.integers(1, m + 1))
    block_bytes = int(rng.integers(1, 5)) * 512  # word-aligned, varied
    return rng, k, m, f, block_bytes


def _build_system(rng, k, m, block_bytes, n_spare=0):
    n_data = k + m + 4
    coord = Coordinator(
        Cluster([Node(i, 100.0, 100.0) for i in range(n_data)]),
        RSCode(k, m),
        block_bytes=block_bytes,
        block_size_mb=8.0,
        rng=int(rng.integers(0, 2**31)),
    )
    for j in range(n_spare):
        coord.add_spare(Node(n_data + j, 100.0, 100.0))
    return coord


@pytest.mark.parametrize("seed", CASE_SEEDS)
def test_degraded_read_bit_exact_gf8(seed):
    """Healthy baseline == degraded read, for a random erasure pattern."""
    rng, k, m, f, block_bytes = _random_case(seed)
    coord = _build_system(rng, k, m, block_bytes)
    spec = WorkloadSpec(
        n_objects=3, object_bytes=2 * k * block_bytes, seed=int(seed) % (2**31)
    )
    plane = ServingPlane(coord, spec)
    plane.provision()
    baselines = {
        spec.object_name(i): plane.read_object(spec.object_name(i))
        for i in range(spec.n_objects)
    }

    # kill f random distinct block-holders of object 0's first stripe:
    # placement holds <= 1 block of a stripe per node, so each stripe
    # loses at most f <= m blocks and stays recoverable.
    sid0 = coord.files[spec.object_name(0)][0][0]
    stripe = next(s for s in coord.layout if s.stripe_id == sid0)
    victims = [stripe.placement[b] for b in rng.choice(k + m, size=f, replace=False)]
    for v in victims:
        coord.crash_node(v)

    alive_gateway = sorted(coord.data_nodes())[0]
    for name, want in baselines.items():
        got = plane.read_object(name, gateway=alive_gateway)
        assert got == want, f"degraded read of {name} drifted (case seed {seed})"


@pytest.mark.parametrize("seed", CASE_SEEDS)
def test_degraded_read_bit_exact_gf16(seed):
    """Same contract at GF(2^16), provisioned straight through the agents.

    The coordinator's byte-oriented ``write`` path is uint8; wide-stripe
    GF(2^16) systems store uint16 word blocks, so the test registers the
    stripe/file metadata itself and then drives the *identical*
    :meth:`ServingPlane.read_object` degraded path.
    """
    rng, k, m, f, _ = _random_case(seed)
    words = int(rng.integers(16, 65))
    field = GF(16)
    code = RSCode(k, m, field)
    n_data = k + m + 2
    coord = Coordinator(
        Cluster([Node(i, 100.0, 100.0) for i in range(n_data)]),
        code,
        block_bytes=1 << 10,
        field_=field,
        rng=0,
    )
    data = rng.integers(0, field.size, size=(k, words)).astype(field.dtype)
    coded = code.encode_stripe(data)
    placement = [int(i) for i in rng.choice(n_data, size=k + m, replace=False)]
    coord.layout.add(Stripe(0, k, m, placement))
    for b, node in enumerate(placement):
        coord.agents[node].store_block(block_name(0, b), coded[b])
    coord.files["wide"] = ([0], k * words)  # length in words: slices uniformly

    plane = ServingPlane(coord, WorkloadSpec(n_objects=1))
    want = plane.read_object("wide")
    assert want == np.concatenate([coded[b] for b in range(k)]).tobytes()

    victims = [placement[b] for b in rng.choice(k + m, size=f, replace=False)]
    for v in victims:
        coord.crash_node(v)
    gateway = sorted(coord.data_nodes())[0]
    assert plane.read_object("wide", gateway=gateway) == want


@pytest.mark.parametrize("seed", CASE_SEEDS[:3])
def test_degraded_read_bit_exact_mid_storm(seed):
    """Reads stay bit-exact while a repair storm churns the plan cache."""
    rng, k, m, f, block_bytes = _random_case(seed)
    coord = _build_system(rng, k, m, block_bytes, n_spare=f + 2)
    spec = WorkloadSpec(
        n_objects=4, object_bytes=k * block_bytes, seed=int(seed) % (2**31)
    )
    plane = ServingPlane(coord, spec)
    plane.provision()
    baselines = {
        spec.object_name(i): plane.read_object(spec.object_name(i))
        for i in range(spec.n_objects)
    }

    sid0 = coord.files[spec.object_name(0)][0][0]
    stripe = next(s for s in coord.layout if s.stripe_id == sid0)
    victims = [stripe.placement[b] for b in rng.choice(k + m, size=f, replace=False)]
    for v in victims:
        coord.crash_node(v)

    gw = sorted(coord.data_nodes())[0]
    for name, want in baselines.items():  # degraded, plans enter the cache
        assert plane.read_object(name, gateway=gw) == want
    # mid-storm: a helper becomes untrusted, its cached plans are evicted
    coord.plan_cache.invalidate_survivor(0)
    for name, want in baselines.items():  # re-decode through rebuilt plans
        assert plane.read_object(name, gateway=gw) == want
    # the storm lands: batched repair through the same shared cache
    coord.repair(RepairRequest(scheme="hmbr", batched=True))
    for name, want in baselines.items():  # healthy again, still bit-exact
        assert plane.read_object(name, gateway=gw) == want


def test_unrecoverable_read_raises():
    rng = np.random.default_rng(7)
    coord = _build_system(rng, 3, 2, 512)
    spec = WorkloadSpec(n_objects=1, object_bytes=3 * 512)
    plane = ServingPlane(coord, spec)
    plane.provision()
    sid = coord.files[spec.object_name(0)][0][0]
    stripe = next(s for s in coord.layout if s.stripe_id == sid)
    for v in stripe.placement[:3]:  # m + 1 losses: < k survive
        coord.crash_node(v)
    gw = sorted(coord.data_nodes())[0]
    with pytest.raises(StripeUnrecoverable):
        plane.read_object(spec.object_name(0), gateway=gw)
