"""Property suite for the chunked degraded-read pipeline (ISSUE 7).

Pins the tentpole's two contracts:

* **bit-exactness** — for chunks in {1, 2, 4, 8} over random (k, m, f)
  in GF(2^8) and GF(2^16), the pipelined degraded read returns exactly
  the barrier path's bytes (column-sliced GF decode is a partition of
  the whole-block matmul), at both the engine level
  (:func:`~repro.workload.pipeline.decode_chunked`) and through the full
  serving data plane;
* **latency monotonicity** — degraded read latency is non-increasing in
  the chunk count (each extra slice can only start decode earlier),
  while the healthy subset is untouched by the knob.

Plus the fast-path foundation: :meth:`RepairScheduler.estimate_finish_s
<repro.sched.scheduler.RepairScheduler.estimate_finish_s>` must be
planning-only — identical on repeat, center-scheduler state restored,
and a subsequent real repair bit-identical to one never preceded by an
estimate.
"""

import numpy as np
import pytest

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.ec.stripe import Stripe, block_name
from repro.gf.field import GF
from repro.repair.batch import BatchRepairEngine, PlanCache
from repro.system.coordinator import Coordinator
from repro.system.request import RepairRequest
from repro.workload import (
    ServeRequest,
    ServingPlane,
    WorkloadSpec,
    chunk_slices,
    chunked_read_tasks,
    decode_chunked,
    read_pipeline_report,
)
from tests.seeds import DEFAULT_MASTER_SEED, seed_fanout

CASE_SEEDS = seed_fanout(DEFAULT_MASTER_SEED, 5)
CHUNK_GRID = (1, 2, 4, 8)


def _random_case(seed):
    """Random (k, m, f, block_bytes) with f <= m (per-stripe recoverable)."""
    rng = np.random.default_rng(seed)
    k = int(rng.integers(2, 7))
    m = int(rng.integers(2, 5))
    f = int(rng.integers(1, m + 1))
    block_bytes = int(rng.integers(1, 5)) * 512
    return rng, k, m, f, block_bytes


def _build_system(rng, k, m, block_bytes, n_spare=0):
    n_data = k + m + 4
    coord = Coordinator(
        Cluster([Node(i, 100.0, 100.0) for i in range(n_data)]),
        RSCode(k, m),
        block_bytes=block_bytes,
        block_size_mb=8.0,
        rng=int(rng.integers(0, 2**31)),
    )
    for j in range(n_spare):
        coord.add_spare(Node(n_data + j, 100.0, 100.0))
    return coord


# ------------------------------------------------------------------ #
# chunk geometry
# ------------------------------------------------------------------ #
def test_chunk_slices_partition_word_aligned():
    """Slices tile [0, B) exactly, word-aligned, for any chunk request."""
    for block_len in (2, 8, 512, 1000, 4096):
        for chunks in (1, 2, 3, 4, 7, 8, 64, block_len + 5):
            slices = chunk_slices(block_len, chunks)
            assert 1 <= len(slices) <= chunks
            assert slices[0].lo == 0 and slices[-1].hi == block_len
            for a, b in zip(slices, slices[1:]):
                assert a.hi == b.lo  # contiguous, no gaps or overlaps
            for sl in slices:
                assert sl.width > 0
                assert sl.lo % 2 == 0  # even columns: GF(2^16) word safe
    with pytest.raises(ValueError):
        chunk_slices(16, 0)
    with pytest.raises(ValueError):
        chunk_slices(0, 1)


# ------------------------------------------------------------------ #
# bit-exactness: engine level
# ------------------------------------------------------------------ #
@pytest.mark.parametrize("w", [8, 16])
@pytest.mark.parametrize("seed", CASE_SEEDS[:3])
def test_decode_chunked_matches_barrier_decode(seed, w):
    """decode_chunked == decode_batch for every chunk count, both fields."""
    rng, k, m, f, _ = _random_case(seed)
    field = GF(w)
    code = RSCode(k, m, field)
    words = int(rng.integers(32, 129))
    data = rng.integers(0, field.size, size=(k, words)).astype(field.dtype)
    coded = code.encode_stripe(data)
    failed = sorted(int(b) for b in rng.choice(k, size=min(f, k), replace=False))
    survivors = [b for b in range(k + m) if b not in failed][:k]
    stacked = np.stack([coded[b] for b in survivors])[None, ...]
    engine = BatchRepairEngine(code, cache=PlanCache())
    want = engine.decode_batch(tuple(survivors), tuple(failed), stacked)
    for chunks in (1, 2, 3, 4, 8, 64, words + 3):
        got = decode_chunked(engine, tuple(survivors), tuple(failed), stacked, chunks)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want), f"chunks={chunks} drifted"


# ------------------------------------------------------------------ #
# bit-exactness: the full serving data plane
# ------------------------------------------------------------------ #
@pytest.mark.parametrize("seed", CASE_SEEDS)
def test_chunked_read_bit_exact_gf8(seed):
    """Pipelined degraded reads return the barrier path's exact bytes."""
    rng, k, m, f, block_bytes = _random_case(seed)
    coord = _build_system(rng, k, m, block_bytes)
    spec = WorkloadSpec(
        n_objects=3, object_bytes=2 * k * block_bytes, seed=int(seed) % (2**31)
    )
    ServingPlane(coord, spec).provision()
    sid0 = coord.files[spec.object_name(0)][0][0]
    stripe = next(s for s in coord.layout if s.stripe_id == sid0)
    for v in [stripe.placement[b] for b in rng.choice(k + m, size=f, replace=False)]:
        coord.crash_node(v)
    gw = sorted(coord.data_nodes())[0]
    planes = {c: ServingPlane(coord, spec, chunks=c) for c in CHUNK_GRID}
    for i in range(spec.n_objects):
        name = spec.object_name(i)
        want = planes[1].read_object(name, gateway=gw)  # the barrier path
        for c in CHUNK_GRID[1:]:
            got = planes[c].read_object(name, gateway=gw)
            assert got == want, f"chunks={c} drifted on {name} (seed {seed})"


@pytest.mark.parametrize("seed", CASE_SEEDS[:3])
def test_chunked_read_bit_exact_gf16(seed):
    """Same contract on a GF(2^16) wide-word stripe."""
    rng, k, m, f, _ = _random_case(seed)
    words = int(rng.integers(16, 65))
    field = GF(16)
    code = RSCode(k, m, field)
    n_data = k + m + 2
    coord = Coordinator(
        Cluster([Node(i, 100.0, 100.0) for i in range(n_data)]),
        code,
        block_bytes=1 << 10,
        field_=field,
        rng=0,
    )
    data = rng.integers(0, field.size, size=(k, words)).astype(field.dtype)
    coded = code.encode_stripe(data)
    placement = [int(i) for i in rng.choice(n_data, size=k + m, replace=False)]
    coord.layout.add(Stripe(0, k, m, placement))
    for b, node in enumerate(placement):
        coord.agents[node].store_block(block_name(0, b), coded[b])
    coord.files["wide"] = ([0], k * words)
    want = np.concatenate([coded[b] for b in range(k)]).tobytes()
    for v in [placement[b] for b in rng.choice(k + m, size=f, replace=False)]:
        coord.crash_node(v)
    gw = sorted(coord.data_nodes())[0]
    for c in CHUNK_GRID:
        plane = ServingPlane(coord, WorkloadSpec(n_objects=1), chunks=c)
        assert plane.read_object("wide", gateway=gw) == want, f"chunks={c}"


# ------------------------------------------------------------------ #
# latency: monotone non-increasing in chunk count
# ------------------------------------------------------------------ #
K, M, BLOCK_BYTES = 4, 2, 4096
SPEC = WorkloadSpec(
    n_objects=8, object_bytes=2 * K * BLOCK_BYTES, duration_s=6.0,
    rate_ops_s=8.0, read_fraction=0.9, write_bytes=256, seed=20230717,
)


def _serve(chunks, *, decode_mbps=32.0, repair=(), fast_path=True):
    rng = np.random.default_rng(11)
    coord = _build_system(rng, K, M, BLOCK_BYTES, n_spare=4)
    plane = ServingPlane(
        coord, SPEC, chunks=chunks, decode_mbps=decode_mbps, fast_path=fast_path
    )
    plane.provision()
    stripe0 = next(s for s in coord.layout if s.stripe_id == 0)
    for v in stripe0.placement[:2]:
        coord.crash_node(v)
    return plane.run(repair=repair)


def test_degraded_latency_monotone_in_chunks():
    """More chunks never slow a degraded read; healthy ops never move."""
    runs = {c: _serve(c) for c in CHUNK_GRID}
    base = runs[1]
    assert base.degraded_reads > 0
    assert base.pipeline_saved_s == 0.0  # one chunk == the barrier model
    prev = base
    for c in CHUNK_GRID[1:]:
        cur = runs[c]
        # identical bytes, identical op population
        assert [o.digest for o in cur.outcomes] == [o.digest for o in base.outcomes]
        assert cur.degraded_reads == base.degraded_reads
        # pipelining strictly helps once decode is split
        assert cur.pipeline_saved_s > 0.0
        for key in ("p50", "p99", "mean", "max"):
            assert cur.latency_degraded[key] <= prev.latency_degraded[key] + 1e-9
        # the knob only touches degraded stripes: healthy subset unmoved
        # (re-solve events land at different instants across chunk counts,
        # so allow last-ulp float drift in the fluid finish times)
        assert cur.latency_healthy.keys() == base.latency_healthy.keys()
        for key, val in base.latency_healthy.items():
            assert cur.latency_healthy[key] == pytest.approx(val, abs=1e-9)
        for a, b in zip(cur.outcomes, base.outcomes):
            if not a.degraded:
                assert a.latency_s == pytest.approx(b.latency_s, abs=1e-9)
        prev = cur


def test_per_op_degraded_finish_never_regresses():
    """Per-op, not just per-percentile: every degraded op's finish is <=."""
    base = _serve(1)
    for c in CHUNK_GRID[1:]:
        cur = _serve(c)
        for a, b in zip(cur.outcomes, base.outcomes):
            assert a.finish_s <= b.finish_s + 1e-9


# ------------------------------------------------------------------ #
# task topology
# ------------------------------------------------------------------ #
def test_chunked_tasks_reduce_to_legacy_at_one_chunk():
    """chunks=1 emits exactly the PR 6 barrier ids and dependencies."""
    plan = chunked_read_tasks(
        prefix="fg:7:", sid=3, fetches=[(0, 5), (2, 6)], n_missing=1,
        slices=chunk_slices(4096, 1), block_size_mb=32.0, decode_mbps=1024.0,
        weight=4.0, gateway=1,
    )
    ids = [t.task_id for t in plan.tasks]
    assert ids == ["fg:7:s3:b0", "fg:7:s3:b2", "fg:7:dec3"]
    flows = plan.tasks[:2]
    assert all(t.deps == ("fg:7:arr",) for t in flows)
    assert plan.tasks[2].deps == ("fg:7:s3:b0", "fg:7:s3:b2")
    assert plan.cost_s == (32.0 / 1024.0,)


def test_chunked_tasks_chain_fetch_and_decode():
    """Chunk c's sub-flow depends on c-1's; decode chains on one lane."""
    plan = chunked_read_tasks(
        prefix="fg:7:", sid=3, fetches=[(0, 5)], n_missing=2,
        slices=chunk_slices(4096, 4), block_size_mb=32.0, decode_mbps=64.0,
        weight=4.0, gateway=1,
    )
    assert len(plan.dec_ids) == 4
    flows = [t for t in plan.tasks if t.task_id.startswith("fg:7:s3:b0")]
    assert flows[0].deps == ("fg:7:arr",)
    for prev, cur in zip(flows, flows[1:]):
        assert cur.deps == (prev.task_id,)  # streaming chain per block
    assert abs(sum(f.size_mb for f in flows) - 32.0) < 1e-12
    decs = [t for t in plan.tasks if t.task_id.startswith("fg:7:dec3")]
    assert decs[0].deps == (flows[0].task_id,)
    for i, (prev, cur) in enumerate(zip(decs, decs[1:]), start=1):
        assert cur.deps == (flows[i].task_id, prev.task_id)
    assert abs(sum(plan.cost_s) - 2 * 32.0 / 64.0) < 1e-12


def test_read_pipeline_report_single_lane_semantics():
    """The savings model is pipeline_schedule(workers=1) exactly."""
    rep = read_pipeline_report([1.0, 2.0, 3.0], [1.0, 1.0, 1.0])
    assert rep.workers == 1
    assert rep.makespan_s == 4.0  # chained: 1->2, 2->3, 3->4
    assert rep.barrier_makespan_s == 6.0  # all ready at 3, then 3 decodes
    assert rep.saved_s == 2.0


# ------------------------------------------------------------------ #
# the fast-path estimate is planning-only
# ------------------------------------------------------------------ #
def _failed_system(seed=5):
    rng = np.random.default_rng(seed)
    coord = _build_system(rng, K, M, BLOCK_BYTES, n_spare=4)
    spec = WorkloadSpec(n_objects=4, object_bytes=2 * K * BLOCK_BYTES, seed=9)
    ServingPlane(coord, spec).provision()
    stripe0 = next(s for s in coord.layout if s.stripe_id == 0)
    for v in stripe0.placement[:2]:
        coord.crash_node(v)
    return coord


def test_estimate_finish_s_is_deterministic_and_stateless():
    """Repeat estimates agree, and the center scheduler is untouched."""
    coord = _failed_system()
    req = (RepairRequest(scheme="hmbr", batched=True, priority="background"),)
    cs = coord.center_scheduler
    state0 = (dict(cs.counts), dict(cs.last_selected), cs._clock)
    a = coord.sched.estimate_finish_s(req)
    assert (dict(cs.counts), dict(cs.last_selected), cs._clock) == state0
    b = coord.sched.estimate_finish_s(req)
    assert a.finish_s == b.finish_s and a.replacement_of == b.replacement_of
    assert a.finish_s  # the storm repairs something
    assert all(t > 0.0 for t in a.finish_s.values())
    dead = set(coord.cluster.dead_ids())
    assert set(a.replacement_of) <= dead
    assert set(a.replacement_of.values()) <= set(coord.spares)


def test_estimate_does_not_perturb_the_real_repair():
    """A repair preceded by an estimate is bit-identical to one without."""
    ca, cb = _failed_system(), _failed_system()
    req = RepairRequest(scheme="hmbr", batched=True)
    ca.sched.estimate_finish_s((req,))  # only system A estimates first
    ra, rb = ca.repair(req), cb.repair(req)
    assert ra.stripes_repaired == rb.stripes_repaired
    assert ra.blocks_recovered == rb.blocks_recovered
    assert ra.makespan_s == rb.makespan_s
    pa = {s.stripe_id: list(s.placement) for s in ca.layout}
    pb = {s.stripe_id: list(s.placement) for s in cb.layout}
    assert pa == pb  # same spare assignment AND same center picks


def test_estimate_skips_unplannable_requests():
    """No free spares -> no estimate, no exception, nothing queued."""
    rng = np.random.default_rng(3)
    coord = _build_system(rng, K, M, BLOCK_BYTES, n_spare=0)
    spec = WorkloadSpec(n_objects=2, object_bytes=K * BLOCK_BYTES, seed=1)
    ServingPlane(coord, spec).provision()
    stripe0 = next(s for s in coord.layout if s.stripe_id == 0)
    coord.crash_node(stripe0.placement[0])
    eta = coord.sched.estimate_finish_s((RepairRequest(),))
    assert eta.finish_s == {} and eta.replacement_of == {}
    assert coord.sched.queue_depth == 0


# ------------------------------------------------------------------ #
# facade threading
# ------------------------------------------------------------------ #
def test_serve_request_validates_and_threads_chunks():
    with pytest.raises(ValueError):
        ServeRequest(spec=SPEC, chunks=0)
    with pytest.raises(ValueError):
        ServeRequest(spec=SPEC, chunks=2.5)
    rng = np.random.default_rng(2)
    coord = _build_system(rng, K, M, BLOCK_BYTES, n_spare=4)
    res = coord.serve(ServeRequest(spec=SPEC, chunks=4, fast_path=False))
    assert res.chunks == 4
    assert res.fast_path_reads == 0
