"""Three-regime serving regression: healthy / degraded / repair storm.

Pins ISSUE 6's acceptance claim on one seeded scenario:

* **healthy** — no failures: every read completes un-degraded and the
  p50/p99 tables are finite and populated;
* **degraded** — two dead nodes: reads landing on lost blocks decode on
  the fly and pay for it (degraded p99 >= healthy-subset p99 in the same
  run, and the whole run's p99 >= the healthy regime's);
* **repair storm** — the same failures with a whole-cluster repair queued
  alongside the traffic.  The storm raises foreground read p99 *less*
  when client flows run at the scheduler's foreground weight (4.0)
  against a background storm (0.25) than when everything contends at
  equal weight — the weighted-sharing protection the bench quantifies.

Everything is simulated time, so every number here is deterministic; the
final test pins that too.
"""

import math

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.system.coordinator import Coordinator
from repro.system.request import RepairRequest
from repro.workload import ServeRequest, ServingPlane, WorkloadSpec

K, M, BLOCK_BYTES = 4, 2, 4096
SPEC = WorkloadSpec(
    n_objects=8,
    object_bytes=2 * K * BLOCK_BYTES,
    duration_s=6.0,
    rate_ops_s=8.0,
    read_fraction=0.9,
    write_bytes=256,
    seed=20230717,
)


def _build():
    coord = Coordinator(
        Cluster([Node(i, 100.0, 100.0) for i in range(14)]),
        RSCode(K, M),
        block_bytes=BLOCK_BYTES,
        block_size_mb=48.0,
        rng=4242,
        heartbeat_timeout=5.0,
    )
    for j in range(6):
        coord.add_spare(Node(14 + j, 100.0, 100.0))
    return coord


def _run(*, foreground_weight=4.0, kill=0, repair=(), chunks=1,
         fast_path=True, decode_mbps=1024.0):
    """One fresh system serving SPEC, optionally faulted and under storm."""
    coord = _build()
    plane = ServingPlane(
        coord, SPEC, foreground_weight=foreground_weight, chunks=chunks,
        fast_path=fast_path, decode_mbps=decode_mbps,
    )
    plane.provision()
    if kill:
        stripe0 = next(s for s in coord.layout if s.stripe_id == 0)
        for v in stripe0.placement[:kill]:
            coord.crash_node(v)
    return plane.run(repair=repair)


def _storm():
    """A whole-cluster batched repair submitted next to the traffic."""
    return (RepairRequest(scheme="hmbr", batched=True, priority="background"),)


def _finite(table):
    assert table["count"] > 0
    for key in ("p50", "p99", "mean", "min", "max"):
        assert math.isfinite(table[key]) and table[key] >= 0.0


# ------------------------------------------------------------------ #
# the three regimes report p50/p99
# ------------------------------------------------------------------ #
def test_healthy_regime():
    """No failures: all reads healthy, served through the serve() facade."""
    res = _build().serve(ServeRequest(spec=SPEC))
    assert res.failed_reads == 0 and res.failed_writes == 0
    assert res.degraded_reads == 0
    assert res.latency_degraded == {"count": 0}
    _finite(res.latency)
    _finite(res.latency_healthy)
    assert res.latency == res.latency_healthy
    # healthy foreground is the only bus traffic there is
    assert res.foreground_bytes == res.bus_bytes_delta > 0


def test_degraded_regime():
    """Two dead nodes: degraded reads complete, and they pay for the decode."""
    healthy = _run()
    res = _run(kill=2)
    assert res.failed_reads == 0, "2 losses with m=2 must stay recoverable"
    assert res.degraded_reads > 0
    _finite(res.latency_degraded)
    # the decode surcharge is visible: degraded reads trail the healthy
    # reads of the *same* run (cross-run comparison is not meaningful —
    # killing nodes reshuffles which gateway serves each op)
    assert res.latency_degraded["p99"] >= res.latency_healthy["p99"]
    assert res.latency_degraded["mean"] >= res.latency_healthy["mean"]
    # every read still reported a latency
    assert res.latency["count"] == healthy.latency["count"]


def test_storm_regime_reports_all_tables():
    res = _run(kill=2, repair=_storm())
    assert res.degraded_reads > 0
    _finite(res.latency)
    _finite(res.latency_healthy)
    _finite(res.latency_degraded)
    assert res.repair is not None and len(res.repair.jobs) == 1
    assert res.repair.jobs[0].state == "done"
    # the storm moved repair bytes over and above the foreground's
    assert res.bus_bytes_delta > res.foreground_bytes


# ------------------------------------------------------------------ #
# the acceptance pin: weighted sharing protects foreground p99
# ------------------------------------------------------------------ #
def test_storm_hurts_foreground_less_under_weighted_sharing():
    """fg 4.0 vs bg 0.25 beats everyone-at-1.0, with the same storm.

    ``fast_path=False`` isolates pure contention: with the fast path on,
    reads arriving after the storm's estimated landings stop degrading at
    all and storm p99 can drop *below* the no-repair baseline (that
    rescue is pinned separately below).
    """
    baseline = _run(kill=2)
    weighted = _run(
        foreground_weight=4.0, kill=2, repair=_storm(), fast_path=False
    )
    equal = _run(
        foreground_weight=1.0,
        kill=2,
        repair=(RepairRequest(scheme="hmbr", batched=True, weight=1.0),),
        fast_path=False,
    )
    # the storm hurts in both policies...
    assert weighted.latency["p99"] >= baseline.latency["p99"]
    assert equal.latency["p99"] > baseline.latency["p99"]
    # ...but measurably less under weighted sharing
    assert weighted.latency["p99"] < equal.latency["p99"]
    assert weighted.latency["p50"] <= equal.latency["p50"]
    # the protection is real, not a different amount of repair work:
    # both storms repaired the same stripes and moved the same bytes
    wj, ej = weighted.repair.jobs[0], equal.repair.jobs[0]
    assert (wj.stripes_repaired, wj.blocks_recovered) == (
        ej.stripes_repaired,
        ej.blocks_recovered,
    )
    assert weighted.bus_bytes_delta == equal.bus_bytes_delta


def test_fast_path_rescues_reads_behind_the_repair_wave():
    """Partially-repaired stripes answer as healthy reads (same bytes).

    With the fast path armed, ops arriving after the storm's estimated
    per-stripe landings skip the degraded surcharge; the run serves fewer
    degraded reads at a p99 no worse than the contention-only run, and
    every payload digest is unchanged.
    """
    rescued = _run(kill=2, repair=_storm())
    contended = _run(kill=2, repair=_storm(), fast_path=False)
    assert rescued.fast_path_reads > 0
    assert contended.fast_path_reads == 0
    assert rescued.degraded_reads < contended.degraded_reads
    assert rescued.latency["p99"] <= contended.latency["p99"]
    assert [o.digest for o in rescued.outcomes] == [
        o.digest for o in contended.outcomes
    ]
    # rescued stripes are modeled as healthy fetches, never failures
    assert rescued.failed_reads == contended.failed_reads
    assert rescued.reads == contended.reads


def test_regimes_are_deterministic():
    """One seed, one report: the regime summaries replay bit-identically."""
    a = _run(kill=2, repair=_storm())
    b = _run(kill=2, repair=_storm())
    assert a.summary() == b.summary()
    assert [o.digest for o in a.outcomes] == [o.digest for o in b.outcomes]
