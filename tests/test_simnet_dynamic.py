"""Dynamic bandwidth workload tests (§VII extension)."""

import pytest

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.simnet.dynamic import BandwidthEvent
from repro.simnet.flows import Flow
from repro.simnet.fluid import FluidSimulator
from repro.simnet.network import NetworkTrace


def two_node_cluster(up=100.0, down=100.0):
    return Cluster([Node(0, up, down), Node(1, up, down)])


def test_event_validation():
    with pytest.raises(ValueError):
        BandwidthEvent(time=-1.0, node=0, uplink=10)
    with pytest.raises(ValueError):
        BandwidthEvent(time=0.0, node=0, uplink=0.0)
    ev = BandwidthEvent(time=1.0, node=3, downlink=50.0)
    assert ev.capacity_updates() == {"down:3": 50.0}


def test_flow_straddles_bandwidth_drop():
    """100 MB at 100 MB/s for 0.5 s, then 50 MB/s: total = 0.5 + 50/50 = 1.5 s."""
    cl = two_node_cluster()
    sim = FluidSimulator(cl)
    events = [BandwidthEvent(time=0.5, node=0, uplink=50.0)]
    res = sim.run([Flow("f", 0, 1, 100.0)], events=events)
    assert res.makespan == pytest.approx(1.5, rel=1e-6)


def test_flow_straddles_bandwidth_recovery():
    """Rates can also improve mid-flight."""
    cl = two_node_cluster(up=50.0)
    sim = FluidSimulator(cl)
    events = [BandwidthEvent(time=1.0, node=0, uplink=200.0)]
    res = sim.run([Flow("f", 0, 1, 100.0)], events=events)
    # 50 MB in the first second, remaining 50 MB at min(200, down=100) = 100
    assert res.makespan == pytest.approx(1.5, rel=1e-6)


def test_event_after_completion_is_harmless():
    cl = two_node_cluster()
    sim = FluidSimulator(cl)
    res = sim.run([Flow("f", 0, 1, 10.0)], events=[BandwidthEvent(5.0, 0, uplink=1.0)])
    assert res.makespan == pytest.approx(0.1)


def test_multiple_events_piecewise_rates():
    cl = two_node_cluster()
    sim = FluidSimulator(cl)
    events = [
        BandwidthEvent(0.5, 0, uplink=10.0),
        BandwidthEvent(1.5, 0, uplink=100.0),
    ]
    # 50 MB + 10 MB + remaining 40 MB at 100 -> 0.5 + 1.0 + 0.4 = 1.9 s
    res = sim.run([Flow("f", 0, 1, 100.0)], events=events)
    assert res.makespan == pytest.approx(1.9, rel=1e-6)


def test_many_events_drain_in_order_and_in_linear_time():
    """Regression for the quadratic ``pending_events.pop(0)`` drain.

    10k bandwidth events against one long flow must (a) produce the exact
    piecewise-constant makespan and (b) complete quickly — the old
    list-pop-front loop went quadratic in the event count.  The timing
    bound is deliberately loose (CI-safe) while still far below the
    quadratic regime, which took minutes at this size.
    """
    import time

    cl = two_node_cluster()
    n = 10_000
    # alternate the uplink between 100 and 50 MB/s every millisecond
    events = [
        BandwidthEvent(time=0.001 * (i + 1), node=0,
                       uplink=50.0 if i % 2 == 0 else 100.0)
        for i in range(n)
    ]
    # mean rate over the event window is 75 MB/s; size the flow to finish
    # mid-window so thousands of events apply while it runs
    size_mb = 75.0 * 0.001 * (n // 2)  # 375 MB -> finishes around t = 5 s
    t0 = time.perf_counter()
    res = FluidSimulator(cl).run([Flow("f", 0, 1, size_mb)], events=events)
    elapsed = time.perf_counter() - t0
    # exact piecewise integral: 0.1 MB per 1 ms at 100, 0.05 MB per ms at 50
    remaining = size_mb - 0.1  # first ms runs at the initial 100 MB/s
    t = 0.001
    rate = 50.0
    while remaining > rate * 0.001 + 1e-12:
        remaining -= rate * 0.001
        t += 0.001
        rate = 100.0 if rate == 50.0 else 50.0
    t += remaining / rate
    assert res.makespan == pytest.approx(t, rel=1e-6)
    assert elapsed < 10.0, f"event drain took {elapsed:.1f}s — quadratic again?"


def test_degrade_trace_lowering():
    cl = Cluster([Node(0, 100, 200, cross_uplink=20), Node(1, 100, 100)])
    events = NetworkTrace.degrade([0], at_time=2.0, factor=4.0).events_for(cl)
    assert len(events) == 1
    ev = events[0]
    assert ev.uplink == 25.0 and ev.downlink == 50.0 and ev.cross_uplink == 5.0
    with pytest.raises(ValueError):
        NetworkTrace.degrade([0], at_time=1.0, factor=0.0)


def test_degrade_nodes_shim_warns_and_matches_facade():
    """The legacy helper still works, warns once, and is event-identical."""
    from repro.simnet.dynamic import degrade_nodes

    cl = Cluster([Node(0, 100, 200, cross_uplink=20), Node(1, 100, 100)])
    with pytest.warns(DeprecationWarning, match="degrade_nodes"):
        legacy = degrade_nodes([0, 1], at_time=2.0, factor=4.0, cluster=cl)
    facade = NetworkTrace.degrade([0, 1], at_time=2.0, factor=4.0).events_for(cl)
    assert legacy == facade


def test_dynamics_aware_hybrid_never_worse_than_stale():
    """Searching p against the event schedule beats the stale search."""
    from repro.experiments.common import build_scenario
    from repro.repair.hybrid import plan_hybrid

    sc = build_scenario(16, 8, 4, wld="WLD-2x", seed=2023)
    ctx = sc.ctx
    # survivors' uplinks collapse shortly into the repair
    survivors = ctx.survivor_nodes()
    events = NetworkTrace.degrade(
        survivors[:8], at_time=1.0, factor=8.0
    ).events_for(ctx.cluster)
    sim = FluidSimulator(ctx.cluster)
    stale = plan_hybrid(ctx)  # planned against the snapshot
    aware = plan_hybrid(ctx, events=events)
    t_stale = sim.run(stale.tasks, events=events).makespan
    t_aware = sim.run(aware.tasks, events=events).makespan
    assert t_aware <= t_stale + 1e-9
