"""Fluid simulator tests against hand-computable scenarios.

These pin the simulator to the paper's §III-B1 bandwidth-sharing semantics:
Case 1 (min of uplink/downlink), Case 2 (uplink divided by fan-out), Case 3
(downlink divided by fan-in), plus pipelining, dependencies and cross-rack
caps.
"""

import pytest

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.simnet.flows import DelayTask, Flow, PipelineFlow, validate_tasks
from repro.simnet.fluid import FluidSimulator


def simple_cluster(*bandwidths):
    """Nodes with (uplink, downlink) tuples."""
    return Cluster([Node(i, u, d) for i, (u, d) in enumerate(bandwidths)])


# ------------------------------------------------------------------ #
# task validation
# ------------------------------------------------------------------ #
def test_flow_validation():
    with pytest.raises(ValueError):
        Flow("f", 1, 1, 10.0)
    with pytest.raises(ValueError):
        Flow("f", 0, 1, -1.0)
    with pytest.raises(ValueError):
        PipelineFlow("p", (1,), 10.0)
    with pytest.raises(ValueError):
        PipelineFlow("p", (1, 2, 1), 10.0)
    with pytest.raises(ValueError):
        DelayTask("d", -1.0)


def test_task_graph_validation():
    t1 = Flow("a", 0, 1, 1.0)
    with pytest.raises(ValueError):
        validate_tasks([t1, Flow("a", 1, 2, 1.0)])  # duplicate id
    with pytest.raises(ValueError):
        validate_tasks([Flow("b", 0, 1, 1.0, deps=("missing",))])


# ------------------------------------------------------------------ #
# case 1: single-to-single
# ------------------------------------------------------------------ #
def test_single_flow_min_of_up_down():
    cl = simple_cluster((100, 999), (999, 40))
    res = FluidSimulator(cl).run([Flow("f", 0, 1, 80.0)])
    assert res.makespan == pytest.approx(80.0 / 40.0)  # downlink binds


# ------------------------------------------------------------------ #
# case 2: single-to-multiple (uplink divided by fan-out)
# ------------------------------------------------------------------ #
def test_fan_out_divides_uplink():
    cl = simple_cluster((90, 999), (999, 999), (999, 999), (999, 999))
    flows = [Flow(f"f{i}", 0, i, 30.0) for i in (1, 2, 3)]
    res = FluidSimulator(cl).run(flows)
    # each receiver gets 90/3 = 30 MB/s -> 1 s
    assert res.makespan == pytest.approx(1.0)


def test_fan_out_slow_receiver_releases_share():
    """Max-min: a receiver slower than its fair share frees bandwidth."""
    cl = simple_cluster((90, 999), (999, 10), (999, 999), (999, 999))
    flows = [Flow(f"f{i}", 0, i, 30.0) for i in (1, 2, 3)]
    res = FluidSimulator(cl).run(flows)
    # node 1 capped at 10; the other two split the remaining 80 -> 40 each
    assert res.finish_times["f2"] == pytest.approx(30.0 / 40.0)
    assert res.finish_times["f1"] == pytest.approx(30.0 / 10.0)


# ------------------------------------------------------------------ #
# case 3: multiple-to-single (downlink divided by fan-in)
# ------------------------------------------------------------------ #
def test_fan_in_divides_downlink():
    cl = simple_cluster((999, 999), (999, 999), (999, 999), (999, 60))
    flows = [Flow(f"f{i}", i, 3, 20.0) for i in (0, 1, 2)]
    res = FluidSimulator(cl).run(flows)
    assert res.makespan == pytest.approx(1.0)  # 60/3 = 20 MB/s each


# ------------------------------------------------------------------ #
# pipelines
# ------------------------------------------------------------------ #
def test_pipeline_rate_is_min_hop():
    cl = simple_cluster((100, 100), (70, 100), (100, 100))
    res = FluidSimulator(cl).run([PipelineFlow("p", (0, 1, 2), 35.0)])
    assert res.makespan == pytest.approx(35.0 / 70.0)


def test_concurrent_pipelines_share_links():
    """Two chains over the same path halve the bottleneck uplink each."""
    cl = simple_cluster((100, 999), (80, 999), (999, 999))
    chains = [PipelineFlow(f"p{i}", (0, 1, 2), 40.0) for i in range(2)]
    res = FluidSimulator(cl).run(chains)
    assert res.makespan == pytest.approx(40.0 / (80.0 / 2))


def test_pipeline_counts_every_hop_in_traffic():
    cl = simple_cluster((100, 100), (100, 100), (100, 100))
    res = FluidSimulator(cl).run([PipelineFlow("p", (0, 1, 2), 10.0)])
    assert res.bytes_sent == {0: 10.0, 1: 10.0}
    assert res.bytes_received == {1: 10.0, 2: 10.0}


# ------------------------------------------------------------------ #
# dependencies, delays, zero-size tasks
# ------------------------------------------------------------------ #
def test_dependency_sequencing():
    cl = simple_cluster((10, 10), (10, 10), (10, 10))
    tasks = [
        Flow("first", 0, 1, 10.0),
        Flow("second", 1, 2, 10.0, deps=("first",)),
    ]
    res = FluidSimulator(cl).run(tasks)
    assert res.finish_times["first"] == pytest.approx(1.0)
    assert res.start_times["second"] == pytest.approx(1.0)
    assert res.makespan == pytest.approx(2.0)


def test_delay_task_and_chained_flow():
    cl = simple_cluster((10, 10), (10, 10))
    tasks = [
        DelayTask("compute", 1.5),
        Flow("send", 0, 1, 10.0, deps=("compute",)),
    ]
    res = FluidSimulator(cl).run(tasks)
    assert res.makespan == pytest.approx(2.5)


def test_zero_size_flow_completes_instantly():
    cl = simple_cluster((10, 10), (10, 10))
    res = FluidSimulator(cl).run([Flow("z", 0, 1, 0.0)])
    assert res.makespan == 0.0


def test_dependency_cycle_detected():
    cl = simple_cluster((10, 10), (10, 10))
    tasks = [
        Flow("a", 0, 1, 1.0, deps=("b",)),
        Flow("b", 1, 0, 1.0, deps=("a",)),
    ]
    with pytest.raises(AssertionError):
        FluidSimulator(cl).run(tasks)


# ------------------------------------------------------------------ #
# cross-rack capacities
# ------------------------------------------------------------------ #
def rack_cluster():
    return Cluster(
        [
            Node(0, 100, 100, rack=0, cross_uplink=20, cross_downlink=20),
            Node(1, 100, 100, rack=0, cross_uplink=20, cross_downlink=20),
            Node(2, 100, 100, rack=1, cross_uplink=20, cross_downlink=20),
        ]
    )


def test_inner_rack_flow_ignores_cross_cap():
    res = FluidSimulator(rack_cluster()).run([Flow("f", 0, 1, 50.0)])
    assert res.makespan == pytest.approx(0.5)
    assert res.cross_rack_mb == 0.0


def test_cross_rack_flow_is_capped():
    res = FluidSimulator(rack_cluster()).run([Flow("f", 0, 2, 50.0)])
    assert res.makespan == pytest.approx(50.0 / 20.0)
    assert res.cross_rack_mb == 50.0


def test_cross_rack_pipeline_hops_accounted():
    res = FluidSimulator(rack_cluster()).run([PipelineFlow("p", (0, 1, 2), 20.0)])
    # hop 0->1 inner (100), hop 1->2 cross (20): rate = 20
    assert res.makespan == pytest.approx(1.0)
    assert res.cross_rack_mb == 20.0


# ------------------------------------------------------------------ #
# conservation invariants (property-ish)
# ------------------------------------------------------------------ #
def test_traffic_conservation_random_graph():
    import numpy as np

    rng = np.random.default_rng(0)
    cl = simple_cluster(*[(rng.uniform(20, 200), rng.uniform(20, 200)) for _ in range(12)])
    tasks = []
    for i in range(30):
        a, b = rng.choice(12, size=2, replace=False)
        tasks.append(Flow(f"f{i}", int(a), int(b), float(rng.uniform(1, 64))))
    res = FluidSimulator(cl).run(tasks)
    assert sum(res.bytes_sent.values()) == pytest.approx(sum(t.size_mb for t in tasks))
    assert sum(res.bytes_received.values()) == pytest.approx(sum(t.size_mb for t in tasks))
    # makespan must be at least every flow's unconstrained lower bound
    for t in tasks:
        lower = t.size_mb / min(cl[t.src].uplink, cl[t.dst].downlink)
        assert res.finish_times[t.task_id] >= lower - 1e-9
