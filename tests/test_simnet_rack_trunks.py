"""Shared rack-trunk (top-of-rack uplink) capacity tests."""

import pytest

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.simnet.flows import Flow
from repro.simnet.fluid import FluidSimulator


def trunked_cluster(trunk_up=30.0, trunk_down=None):
    cl = Cluster(
        [
            Node(0, 100, 100, rack=0),
            Node(1, 100, 100, rack=0),
            Node(2, 100, 100, rack=1),
            Node(3, 100, 100, rack=1),
        ]
    )
    cl.set_rack_trunk(0, trunk_up, trunk_down)
    cl.set_rack_trunk(1, trunk_up, trunk_down)
    return cl


def test_trunk_validation():
    cl = trunked_cluster()
    with pytest.raises(ValueError):
        cl.set_rack_trunk(0, -1.0)
    cl.set_all_rack_trunks(50.0)
    assert cl.rack_trunks[0] == (50.0, 50.0)


def test_inner_rack_traffic_ignores_trunk():
    cl = trunked_cluster(trunk_up=10.0)
    res = FluidSimulator(cl).run([Flow("f", 0, 1, 50.0)])
    assert res.makespan == pytest.approx(0.5)


def test_single_cross_flow_capped_by_trunk():
    cl = trunked_cluster(trunk_up=30.0)
    res = FluidSimulator(cl).run([Flow("f", 0, 2, 60.0)])
    assert res.makespan == pytest.approx(2.0)


def test_trunk_shared_by_all_rack_senders():
    """Two cross flows from the same rack share its 30 MB/s trunk."""
    cl = trunked_cluster(trunk_up=30.0)
    flows = [Flow("a", 0, 2, 30.0), Flow("b", 1, 3, 30.0)]
    res = FluidSimulator(cl).run(flows)
    assert res.makespan == pytest.approx(2.0)  # 15 MB/s each


def test_per_node_caps_do_not_share():
    """Contrast: per-node tc caps give each sender its own 30 MB/s."""
    cl = Cluster(
        [
            Node(0, 100, 100, rack=0, cross_uplink=30.0),
            Node(1, 100, 100, rack=0, cross_uplink=30.0),
            Node(2, 100, 100, rack=1),
            Node(3, 100, 100, rack=1),
        ]
    )
    flows = [Flow("a", 0, 2, 30.0), Flow("b", 1, 3, 30.0)]
    res = FluidSimulator(cl).run(flows)
    assert res.makespan == pytest.approx(1.0)


def test_trunk_downlink_direction():
    cl = trunked_cluster(trunk_up=1000.0, trunk_down=20.0)
    flows = [Flow("a", 0, 2, 20.0), Flow("b", 1, 3, 20.0)]
    res = FluidSimulator(cl).run(flows)
    # both flows enter rack 1: share its 20 MB/s down-trunk
    assert res.makespan == pytest.approx(2.0)


def test_rack_aware_cr_wins_more_under_shared_trunk():
    """With a shared trunk, cutting cross flows matters even more than with
    per-node caps: rack-aware CR sends f intermediates per rack instead of
    one block per survivor through the same narrow pipe."""
    from repro.repair.centralized import plan_centralized
    from repro.repair.rackaware import plan_rack_aware_centralized
    from tests.conftest import make_repair_ctx

    ctx = make_repair_ctx(k=8, m=4, f=2, rack_size=4, block_size_mb=64.0)
    ctx.cluster.set_all_rack_trunks(25.0)
    sim = FluidSimulator(ctx.cluster)
    t_plain = sim.run(plan_centralized(ctx).tasks).makespan
    t_rack = sim.run(plan_rack_aware_centralized(ctx).tasks).makespan
    assert t_rack < t_plain
