"""Slice-level pipelining validation of the fluid pipeline abstraction."""

import pytest

from repro.simnet.slicesim import pipeline_steady_state_time, simulate_pipeline_slices


def test_single_slice_is_store_and_forward():
    # one slice: hops serialize fully
    t = simulate_pipeline_slices(60.0, [30.0, 60.0], n_slices=1)
    assert t == pytest.approx(60.0 / 30.0 + 60.0 / 60.0)


def test_many_slices_converge_to_min_hop_rate():
    size = 64.0
    bws = [100.0, 40.0, 80.0, 60.0]
    steady = pipeline_steady_state_time(size, bws)
    t = simulate_pipeline_slices(size, bws, n_slices=1024)
    # fill term shrinks with slice count; within 2% at 1024 slices
    assert t >= steady
    assert t == pytest.approx(steady, rel=0.02)


def test_convergence_is_monotone_in_slices():
    size, bws = 64.0, [50.0, 25.0, 100.0]
    times = [simulate_pipeline_slices(size, bws, n) for n in (1, 4, 16, 64, 256)]
    assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))


def test_wavefront_exact_formula_uniform_bandwidth():
    """Uniform bandwidth: T = (S + H - 1) * slice/bw."""
    size, bw, n, hops = 64.0, 32.0, 8, 5
    t = simulate_pipeline_slices(size, [bw] * hops, n)
    slice_t = (size / n) / bw
    assert t == pytest.approx((n + hops - 1) * slice_t)


def test_input_validation():
    with pytest.raises(ValueError):
        simulate_pipeline_slices(10.0, [10.0], n_slices=0)
    with pytest.raises(ValueError):
        simulate_pipeline_slices(10.0, [], n_slices=4)
    with pytest.raises(ValueError):
        simulate_pipeline_slices(10.0, [0.0], n_slices=4)
