"""Static evaluator tests and fluid-agreement checks."""

import pytest

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.repair.centralized import plan_centralized
from repro.repair.independent import plan_independent
from repro.repair.model import repair_model
from repro.simnet.flows import DelayTask, Flow, PipelineFlow
from repro.simnet.fluid import FluidSimulator
from repro.simnet.static import StaticShareEvaluator
from tests.conftest import make_repair_ctx


def simple_cluster(*bandwidths):
    return Cluster([Node(i, u, d) for i, (u, d) in enumerate(bandwidths)])


def test_static_single_flow():
    cl = simple_cluster((100, 999), (999, 40))
    res = StaticShareEvaluator(cl).run([Flow("f", 0, 1, 80.0)])
    assert res.makespan == pytest.approx(2.0)
    assert res.rates["f"] == pytest.approx(40.0)


def test_static_fan_in_division():
    cl = simple_cluster((999, 999), (999, 999), (999, 999), (999, 60))
    flows = [Flow(f"f{i}", i, 3, 20.0) for i in range(3)]
    res = StaticShareEvaluator(cl).run(flows)
    assert res.makespan == pytest.approx(1.0)


def test_static_pipeline_min_hop_with_sharing():
    cl = simple_cluster((100, 999), (80, 999), (999, 999))
    chains = [PipelineFlow(f"p{i}", (0, 1, 2), 40.0) for i in range(2)]
    res = StaticShareEvaluator(cl).run(chains)
    assert res.makespan == pytest.approx(40.0 / 40.0)  # 80/2 shared


def test_static_dependencies_and_delays():
    cl = simple_cluster((10, 10), (10, 10))
    tasks = [
        DelayTask("d", 1.0),
        Flow("f", 0, 1, 10.0, deps=("d",)),
    ]
    res = StaticShareEvaluator(cl).run(tasks)
    assert res.makespan == pytest.approx(2.0)


def test_static_cycle_detection():
    cl = simple_cluster((10, 10), (10, 10))
    tasks = [
        Flow("a", 0, 1, 1.0, deps=("b",)),
        Flow("b", 1, 0, 1.0, deps=("a",)),
    ]
    with pytest.raises(ValueError):
        StaticShareEvaluator(cl).run(tasks)


def test_static_matches_eq2_eq3_on_plans(fig2):
    """On CR and IR plan shapes the static evaluator equals the paper model."""
    ev = StaticShareEvaluator(fig2.cluster)
    model = repair_model(fig2)
    cr = ev.run(plan_centralized(fig2).tasks).makespan
    ir = ev.run(plan_independent(fig2).tasks).makespan
    assert cr == pytest.approx(model.t_cr)
    assert ir == pytest.approx(model.t_ir)


def test_static_upper_bounds_fluid():
    """Frozen shares never beat max-min reallocation."""
    import numpy as np

    rng = np.random.default_rng(0)
    for seed in range(5):
        rng = np.random.default_rng(seed)
        n = 10
        cl = simple_cluster(*[(rng.uniform(20, 200), rng.uniform(20, 200)) for _ in range(n)])
        tasks = []
        for i in range(20):
            a, b = rng.choice(n, size=2, replace=False)
            tasks.append(Flow(f"f{i}", int(a), int(b), float(rng.uniform(1, 32))))
        t_static = StaticShareEvaluator(cl).run(tasks).makespan
        t_fluid = FluidSimulator(cl).run(tasks).makespan
        assert t_static >= t_fluid - 1e-9


def test_static_agrees_with_fluid_on_uniform_repair():
    """Homogeneous bandwidth: all sharers finish together, so exact match."""
    ctx = make_repair_ctx(k=8, m=4, f=4)
    for plan in (plan_centralized(ctx), plan_independent(ctx)):
        t_static = StaticShareEvaluator(ctx.cluster).run(plan.tasks).makespan
        t_fluid = FluidSimulator(ctx.cluster).run(plan.tasks).makespan
        assert t_static == pytest.approx(t_fluid)
