"""Rate-trace recording and bottleneck-report tests."""

import pytest

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.simnet.flows import Flow, PipelineFlow
from repro.simnet.fluid import FluidSimulator
from repro.simnet.trace import bottleneck_report, node_throughput_timeline, peak_utilization


def cluster3():
    return Cluster([Node(0, 100, 100), Node(1, 50, 100), Node(2, 100, 100)])


def test_trace_disabled_by_default():
    cl = cluster3()
    res = FluidSimulator(cl).run([Flow("f", 0, 1, 10.0)])
    assert res.trace is None
    with pytest.raises(ValueError):
        node_throughput_timeline(res, [], 0)


def test_trace_segments_cover_makespan():
    cl = cluster3()
    tasks = [Flow("a", 0, 1, 10.0), Flow("b", 1, 2, 25.0, deps=("a",))]
    res = FluidSimulator(cl).run(tasks, record_trace=True)
    assert res.trace
    assert res.trace[0][0] == 0.0
    assert res.trace[-1][1] == pytest.approx(res.makespan)
    # segments are contiguous and ordered
    for (_, t1a, _), (t0b, _, _) in zip(res.trace, res.trace[1:]):
        assert t0b == pytest.approx(t1a)


def test_node_throughput_matches_rates():
    cl = cluster3()
    tasks = [Flow("a", 0, 1, 10.0), Flow("c", 0, 2, 10.0)]
    res = FluidSimulator(cl).run(tasks, record_trace=True)
    segs = node_throughput_timeline(res, tasks, 0, "up")
    # node 0 fans out two flows: aggregate uplink = 100 while both active
    assert segs[0][2] == pytest.approx(100.0)
    down = node_throughput_timeline(res, tasks, 1, "down")
    assert down[0][2] == pytest.approx(50.0)
    with pytest.raises(ValueError):
        node_throughput_timeline(res, tasks, 0, "sideways")


def test_peak_utilization_full_for_bottleneck():
    cl = cluster3()
    tasks = [PipelineFlow("p", (0, 1, 2), 25.0)]
    res = FluidSimulator(cl).run(tasks, record_trace=True)
    # node 1's uplink (50) is the min hop: fully utilized
    assert peak_utilization(res, tasks, cl, 1) == pytest.approx(1.0)
    assert peak_utilization(res, tasks, cl, 0) == pytest.approx(0.5)


def test_bottleneck_report_identifies_pacing_node():
    cl = cluster3()
    tasks = [PipelineFlow("p", (0, 1, 2), 25.0)]
    res = FluidSimulator(cl).run(tasks, record_trace=True)
    report = bottleneck_report(res, tasks, cl)
    assert report[0]["node"] == 1
    assert report[0]["fraction_of_makespan"] == pytest.approx(1.0)


def test_bottleneck_report_on_cr_plan(fig2):
    """On Figure 2's CR plan the center's downlink is the bottleneck."""
    from repro.repair.centralized import plan_centralized

    plan = plan_centralized(fig2)
    res = FluidSimulator(fig2.cluster).run(plan.tasks, record_trace=True)
    report = bottleneck_report(res, plan.tasks, fig2.cluster)
    assert report[0]["node"] == plan.meta["center"]
