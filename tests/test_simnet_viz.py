"""Visualization/export tests."""

import json

import pytest

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.simnet.flows import DelayTask, Flow
from repro.simnet.fluid import FluidSimulator
from repro.simnet.viz import ascii_gantt, task_summary_rows, to_json


def run_small(record_trace=False):
    cl = Cluster([Node(0, 100, 100), Node(1, 100, 100), Node(2, 100, 100)])
    tasks = [
        Flow("first", 0, 1, 50.0),
        DelayTask("compute", 0.25, deps=("first",)),
        Flow("second", 1, 2, 25.0, deps=("compute",)),
    ]
    res = FluidSimulator(cl).run(tasks, record_trace=record_trace)
    return res, tasks


def test_gantt_renders_all_tasks_in_order():
    res, tasks = run_small()
    chart = ascii_gantt(res, tasks)
    lines = chart.splitlines()
    assert "first" in lines[2]
    assert "second" in lines[-1]
    assert "#" in lines[2]
    assert ascii_gantt(res, []) == "(no tasks)"


def test_gantt_truncates_long_plans():
    cl = Cluster([Node(i, 100, 100) for i in range(10)])
    tasks = [Flow(f"f{i:02d}", i % 9, (i % 9) + 1, 1.0) for i in range(50)]
    res = FluidSimulator(cl).run(tasks)
    chart = ascii_gantt(res, tasks, max_rows=10)
    assert "more tasks" in chart


def test_task_summary_rates():
    res, tasks = run_small()
    rows = task_summary_rows(res, tasks)
    by = {r["task"]: r for r in rows}
    assert by["first"]["mean_rate_mbps"] == pytest.approx(100.0)
    assert by["compute"]["kind"] == "delay"
    assert by["second"]["start_s"] == pytest.approx(0.75)


def test_json_roundtrip_with_trace():
    res, tasks = run_small(record_trace=True)
    blob = json.loads(to_json(res, tasks))
    assert blob["makespan_s"] == pytest.approx(res.makespan)
    assert len(blob["tasks"]) == 3
    assert blob["trace"]  # recorded
    assert blob["bytes_sent_mb"]["0"] == pytest.approx(50.0)


def test_json_without_trace():
    res, tasks = run_small(record_trace=False)
    blob = json.loads(to_json(res, tasks))
    assert blob["trace"] == []
