"""Spare-matching policy tests (rack preference, bandwidth tie-break)."""

import pytest

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.system.coordinator import Coordinator


def coordinator_with_racked_spares():
    nodes = [Node(i, 100, 100, rack=i // 4) for i in range(8)]
    cluster = Cluster(nodes)
    coord = Coordinator(cluster, RSCode(2, 1), block_bytes=1024)
    coord.add_spare(Node(8, 100, 150, rack=0))
    coord.add_spare(Node(9, 100, 120, rack=0))
    coord.add_spare(Node(10, 100, 200, rack=1))
    return coord


def test_same_rack_spare_preferred():
    coord = coordinator_with_racked_spares()
    out = coord._assign_spares([0], [8, 9, 10])
    assert out == {0: 8}  # rack 0 spares win despite node 10's faster downlink


def test_fastest_downlink_tiebreak_within_rack():
    coord = coordinator_with_racked_spares()
    out = coord._assign_spares([1], [9, 8, 10])
    assert out == {1: 8}  # 150 > 120 among rack-0 spares


def test_falls_back_to_other_racks():
    coord = coordinator_with_racked_spares()
    out = coord._assign_spares([4], [8, 9])  # dead in rack 1, only rack-0 spares
    assert out == {4: 8}


def test_assignment_is_injective():
    coord = coordinator_with_racked_spares()
    out = coord._assign_spares([0, 1, 4], [8, 9, 10])
    assert len(set(out.values())) == 3
    assert out[4] == 10  # the rack-1 spare goes to the rack-1 dead node


def test_repair_uses_rack_matched_spare():
    coord = coordinator_with_racked_spares()
    import numpy as np

    data = np.random.default_rng(0).integers(0, 256, 5000, dtype=np.uint8).tobytes()
    coord.write("f", data)
    victim = coord.layout.stripes[0].placement[0]
    victim_rack = coord.cluster[victim].rack
    coord.crash_node(victim)
    report = coord.repair()
    spare = report.replacements[victim]
    same_rack_spares = [
        s for s in (8, 9, 10) if coord.cluster[s].rack == victim_rack
    ]
    if same_rack_spares:
        assert spare in same_rack_spares
    assert coord.read("f") == data
