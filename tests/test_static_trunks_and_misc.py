"""Static-evaluator trunk support plus assorted edge-case coverage."""

import numpy as np
import pytest

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.repair.executor import Workspace
from repro.simnet.flows import Flow
from repro.simnet.fluid import FluidSimulator
from repro.simnet.static import StaticShareEvaluator


def trunked_cluster():
    cl = Cluster(
        [
            Node(0, 100, 100, rack=0),
            Node(1, 100, 100, rack=0),
            Node(2, 100, 100, rack=1),
            Node(3, 100, 100, rack=1),
        ]
    )
    cl.set_all_rack_trunks(30.0)
    return cl


def test_static_evaluator_honors_trunks():
    cl = trunked_cluster()
    flows = [Flow("a", 0, 2, 30.0), Flow("b", 1, 3, 30.0)]
    static = StaticShareEvaluator(cl).run(flows)
    fluid = FluidSimulator(cl).run(flows)
    # both senders share the 30 MB/s rack-0 up-trunk: 15 each -> 2 s
    assert static.makespan == pytest.approx(2.0)
    assert fluid.makespan == pytest.approx(2.0)


def test_static_inner_rack_ignores_trunk():
    cl = trunked_cluster()
    res = StaticShareEvaluator(cl).run([Flow("a", 0, 1, 50.0)])
    assert res.makespan == pytest.approx(0.5)


def test_workspace_custom_word_size():
    ws = Workspace(word_bytes=16)
    buf = np.arange(64, dtype=np.uint8)
    ws.put(0, "b", buf)
    half = ws.word_slice(buf, 0.0, 0.5)
    assert half.size == 32
    with pytest.raises(ValueError):
        ws.put(0, "bad", np.zeros(24, dtype=np.uint8))  # not 16-aligned


def test_workspace_gf16_alignment():
    from repro.gf.field import GF

    ws = Workspace(field_=GF(16))
    ws.put(0, "b", np.arange(32, dtype=np.uint16))  # 64 bytes, aligned
    with pytest.raises(ValueError):
        ws.put(0, "bad", np.arange(3, dtype=np.uint16))  # 6 bytes


def test_zero_width_stripe_single_group_lrc():
    """l = 1 degenerates to one global XOR parity + g RS parities."""
    from repro.ec.lrc import LRCCode

    code = LRCCode(4, 1, 1)
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(4, 32), dtype=np.uint8)
    stripe = code.encode_stripe(data)
    avail = {i: stripe[i] for i in range(code.n) if i != 2}
    assert np.array_equal(code.repair(2, avail), stripe[2])


def test_flow_tag_defaults_and_hops():
    f = Flow("x", 0, 1, 1.0)
    assert f.tag == ""
    assert f.hops == ((0, 1),)


def test_simulation_result_finish_of_helpers(fig2):
    from repro.repair.centralized import plan_centralized

    plan = plan_centralized(fig2)
    res = FluidSimulator(fig2.cluster).run(plan.tasks)
    prefix = plan.tasks[0].task_id.split(":fetch")[0]
    assert res.finish_of(prefix) == pytest.approx(res.makespan)
    with pytest.raises(KeyError):
        res.finish_of("nonexistent:")
    fetch_finish = res.tag_finish(plan.tasks, plan.tasks[0].tag)
    assert fetch_finish <= res.makespan
    with pytest.raises(KeyError):
        res.tag_finish(plan.tasks, "missing-tag")


def test_finish_of_matches_namespaces_not_bare_prefixes():
    """Regression: ``finish_of("cr")`` must not collect ``cr2:...`` tasks.

    The old implementation matched on ``startswith(tag)``, so a shorter
    namespace silently absorbed every longer namespace sharing its spelling
    and reported an inflated finish time."""
    from repro.simnet.fluid import SimulationResult

    res = SimulationResult(
        makespan=9.0,
        finish_times={"cr:fetch": 1.0, "cr": 2.0, "cr2:fetch": 9.0, "cr_local:x": 5.0},
        start_times={},
        bytes_sent={},
        bytes_received={},
        cross_rack_mb=0.0,
        n_rate_updates=0,
    )
    assert res.finish_of("cr") == 2.0, "cr2:/cr_local: must not leak into cr"
    assert res.finish_of("cr2") == 9.0
    assert res.finish_of("cr_local") == 5.0
    # explicit trailing delimiter: children only, not the bare "cr" task
    assert res.finish_of("cr:") == 1.0
    with pytest.raises(KeyError):
        res.finish_of("c")  # a prefix of a namespace is not that namespace
