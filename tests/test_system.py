"""Storage-system component tests: block store, bus, agents, heartbeats."""

import numpy as np
import pytest

from repro.ec.subblock import word_slice
from repro.repair.plan import CombineOp, ConcatOp, SliceOp, TransferOp
from repro.system.agent import Agent, run_plan_ops
from repro.system.blockstore import BlockStore
from repro.system.bus import DataBus
from repro.system.heartbeat import HeartbeatMonitor


# ------------------------------------------------------------------ #
# block store
# ------------------------------------------------------------------ #
def test_blockstore_put_get_delete():
    bs = BlockStore(0)
    bs.put("a", np.arange(8, dtype=np.uint8))
    assert bs.has("a")
    assert bs.names() == ["a"]
    assert len(bs) == 1
    bs.delete("a")
    assert not bs.has("a")
    with pytest.raises(KeyError):
        bs.get("a")


def test_blockstore_overwrite_control():
    bs = BlockStore(0)
    bs.put("a", np.zeros(8, dtype=np.uint8))
    with pytest.raises(KeyError):
        bs.put("a", np.ones(8, dtype=np.uint8))
    bs.put("a", np.ones(8, dtype=np.uint8), overwrite=True)
    assert bs.get("a")[0] == 1


def test_blockstore_capacity_enforced():
    bs = BlockStore(0, capacity_bytes=16)
    bs.put("a", np.zeros(12, dtype=np.uint8))
    with pytest.raises(MemoryError):
        bs.put("b", np.zeros(8, dtype=np.uint8))
    # replacing an existing block accounts for the freed space
    bs.put("a", np.zeros(16, dtype=np.uint8), overwrite=True)
    assert bs.used_bytes() == 16


# ------------------------------------------------------------------ #
# data bus
# ------------------------------------------------------------------ #
def test_bus_accounting():
    bus = DataBus(rack_of={0: 0, 1: 0, 2: 1})
    bus.record(0, 1, 100)
    bus.record(0, 2, 50)
    assert bus.sent_bytes[0] == 150
    assert bus.received_bytes[1] == 100
    assert bus.cross_rack_bytes == 50
    assert bus.transfer_count == 2
    assert bus.total_bytes() == 150
    bus.reset()
    assert bus.total_bytes() == 0 and bus.cross_rack_bytes == 0


# ------------------------------------------------------------------ #
# agents
# ------------------------------------------------------------------ #
def test_agent_command_execution():
    rng = np.random.default_rng(0)
    buf = rng.integers(0, 256, size=64, dtype=np.uint8)
    a0, a1 = Agent(0), Agent(1)
    a0.store_block("blk", buf)
    bus = DataBus()
    ops = [
        SliceOp(0, "up", "blk", 0.0, 0.5),
        SliceOp(0, "low", "blk", 0.5, 1.0),
        TransferOp(0, 1, "up"),
        TransferOp(0, 1, "low"),
        CombineOp(1, "scaled", (5,), ("up",)),
        ConcatOp(1, "joined", ("up", "low")),
    ]
    run_plan_ops(ops, {0: a0, 1: a1}, bus)
    assert np.array_equal(a1.scratch["joined"], buf)
    from repro.gf.field import gf8

    assert np.array_equal(a1.scratch["scaled"], gf8.scale(5, word_slice(buf, 0, 0.5)))
    assert bus.total_bytes() == 64
    assert a1.compute_seconds > 0
    assert a0.compute_seconds == 0


def test_agent_scratch_shadows_store():
    a = Agent(0)
    a.store_block("x", np.zeros(8, dtype=np.uint8))
    a.scratch["x"] = np.ones(8, dtype=np.uint8)
    assert a._resolve("x")[0] == 1
    a.clear_scratch()
    assert a._resolve("x")[0] == 0


def test_agent_fail_loses_data():
    a = Agent(0)
    a.store_block("x", np.zeros(8, dtype=np.uint8))
    a.scratch["y"] = np.zeros(8, dtype=np.uint8)
    a.fail()
    assert not a.alive
    assert len(a.store) == 0 and not a.scratch


# ------------------------------------------------------------------ #
# heartbeats
# ------------------------------------------------------------------ #
def test_heartbeat_detection():
    mon = HeartbeatMonitor(timeout=10.0)
    mon.register(0, now=0.0)
    mon.register(1, now=0.0)
    mon.beat(0, 8.0)
    assert mon.dead_nodes(now=12.0) == [1]
    assert mon.alive_nodes(now=12.0) == [0]
    mon.beat(1, 13.0)
    assert mon.dead_nodes(now=14.0) == []


def test_heartbeat_unregistered_node():
    mon = HeartbeatMonitor()
    with pytest.raises(KeyError):
        mon.beat(5, 1.0)
    mon.register(5)
    mon.beat(5, 1.0)
    mon.deregister(5)
    assert mon.dead_nodes(1e9) == []
