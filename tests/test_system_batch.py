"""System-level tests for the batched repair path.

Twin-system differentials: two identically-seeded coordinators suffer the
same failures, one repairs per-stripe and one batched — stored bytes,
placements, and simulated repair times must come out identical, healthy
*and* after a `repro.faults` storm.  Plus: the pattern-grouped multi-node
scheduler, the workspace executor's batch mode, and the observability
spans/metrics the batched plane emits.
"""

import numpy as np
import pytest

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import get_code
from repro.ec.stripe import Stripe, block_name
from repro.faults.schedule import FaultSchedule
from repro.obs import Observability
from repro.repair.batch import BatchRepairEngine, PlanCache
from repro.repair.executor import BatchRepairRequest, PlanExecutor, Workspace
from repro.repair.multinode import plan_multi_node
from repro.simnet.fluid import FluidSimulator
from repro.system.coordinator import Coordinator

BLOCK = 1 << 12


def build_system(seed=0, n_data=16, n_spare=6, k=4, m=3, n_stripes=10):
    nodes = [Node(i, rack=i % 4, uplink=1.0, downlink=1.0) for i in range(n_data)]
    coord = Coordinator(Cluster(nodes), get_code(k, m, 8), block_bytes=BLOCK, rng=seed)
    for j in range(n_spare):
        coord.add_spare(Node(100 + j, rack=j % 4, uplink=1.0, downlink=1.0))
    rng = np.random.default_rng(seed + 1000)
    payload = rng.integers(0, 256, size=n_stripes * k * BLOCK, dtype=np.uint8).tobytes()
    coord.write("f", payload)
    return coord


def snapshot(coord):
    placements = {s.stripe_id: list(s.placement) for s in coord.layout}
    return coord.read("f"), placements


@pytest.mark.parametrize("scheme", ["hmbr", "cr", "ir"])
def test_batched_repair_bit_exact_with_per_stripe(scheme):
    a, b = build_system(), build_system()
    for coord in (a, b):
        coord.crash_node(3)
        coord.crash_node(7)
    ra = a.repair(scheme=scheme)
    rb = b.repair(scheme=scheme, batched=True)
    data_a, place_a = snapshot(a)
    data_b, place_b = snapshot(b)
    assert data_a == data_b
    assert place_a == place_b
    # planning and the timing plane are untouched by batching
    assert rb.simulated_transfer_s == pytest.approx(ra.simulated_transfer_s, abs=1e-12)
    assert rb.per_stripe_transfer_s == ra.per_stripe_transfer_s
    assert rb.blocks_recovered == ra.blocks_recovered
    assert rb.batched and not ra.batched
    assert rb.pattern_groups >= 1
    assert rb.plan_cache_stats["misses"] >= 1


def test_batched_repair_verifies_stripes():
    coord = build_system()
    coord.crash_node(2)
    coord.repair(batched=True, verify=True)
    assert all(coord.scrub().values())


def test_plan_cache_reused_across_storms():
    coord = build_system()
    coord.crash_node(3)
    r1 = coord.repair(batched=True)
    assert r1.plan_cache_stats["hits"] == 0
    # same node layout failing again elsewhere: some patterns recur
    coord.crash_node(5)
    r2 = coord.repair(batched=True)
    stats = r2.plan_cache_stats
    assert stats["misses"] >= r1.plan_cache_stats["misses"]
    assert coord.plan_cache.stats() == stats  # report mirrors the live cache


def test_batched_repair_bit_exact_after_fault_storm():
    """Under a `repro.faults` schedule the storm degrades both twins the
    same way; the follow-up repair (batched vs not) must stay bit-exact."""
    schedule = FaultSchedule.random(
        seed=20230717, targets=list(range(8)), n_events=4, max_kills=1
    )
    a, b = build_system(seed=3), build_system(seed=3)
    for coord in (a, b):
        coord.crash_node(1)
        coord.repair_with_faults(schedule, scheme="hmbr")
    # the storm left both systems in the same state; now another node dies
    for coord in (a, b):
        victim = next(i for i in (4, 6, 8) if coord.cluster[i].alive)
        coord.crash_node(victim)
    a.repair(scheme="hmbr")
    b.repair(scheme="hmbr", batched=True)
    data_a, place_a = snapshot(a)
    data_b, place_b = snapshot(b)
    assert data_a == data_b
    assert place_a == place_b
    assert all(b.scrub().values())


def test_batched_repair_emits_obs_spans_and_metrics():
    coord = build_system()
    obs = Observability()
    obs.attach(coord)
    coord.crash_node(3)
    report = coord.repair(batched=True)
    names = [s.name for s in obs.tracer.spans]
    assert "dispatch-batch" in names
    assert any(n.startswith("batch:") for n in names)
    m = obs.metrics
    assert m.counter("batch.groups").value == report.pattern_groups
    assert m.counter("batch.stripes").value == len(report.stripes_repaired)
    assert m.counter("batch.plan_misses").value == report.plan_cache_stats["misses"]
    assert m.counter("batch.gf_bytes").value > 0


def test_batched_compute_charged_to_centers():
    coord = build_system()
    coord.crash_node(3)
    before = {i: agent.compute_seconds for i, agent in coord.agents.items()}
    report = coord.repair(batched=True)
    charged = {
        i: agent.compute_seconds - before[i]
        for i, agent in coord.agents.items()
        if agent.compute_seconds > before[i]
    }
    assert charged, "batched repair must meter compute on some node"
    assert sum(charged.values()) == pytest.approx(report.compute_s_total)
    # only replacement (ex-spare) nodes decode in the batched CR-style plane
    assert set(charged) <= set(report.replacements.values())


# --------------------------------------------------------------------- #
# multi-node scheduler: pattern groups
# --------------------------------------------------------------------- #
def _multinode_scenario(seed=2023, n_data=24, n_dead=3, k=6, m=3, n_stripes=18):
    from repro.cluster.bandwidth import make_wld
    from repro.cluster.placement import place_stripes_random

    ds = make_wld(n_data + n_dead, "WLD-4x", seed=seed)
    cluster = Cluster(
        [Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])) for i in range(n_data + n_dead)]
    )
    code = get_code(k, m)
    layout = place_stripes_random(
        cluster, n_stripes, k, m, rng=seed, candidates=list(range(n_data))
    )
    rng = np.random.default_rng(seed + 13)
    dead = sorted(int(x) for x in rng.choice(n_data, size=n_dead, replace=False))
    cluster.fail_nodes(dead)
    replacement_of = {d: n_data + i for i, d in enumerate(dead)}
    return cluster, code, layout, dead, replacement_of


def test_plan_multi_node_group_patterns_meta_and_jobs():
    cluster, code, layout, dead, repl = _multinode_scenario()
    cache = PlanCache()
    merged, jobs = plan_multi_node(
        cluster, code, layout, dead, repl, group_patterns=True, plan_cache=cache
    )
    groups = merged.meta["pattern_groups"]
    assert groups and sum(len(g["stripes"]) for g in groups) == len(jobs)
    assert all(j.pattern is not None for j in jobs)
    # jobs come out group-major: each pattern forms one contiguous run
    import itertools

    runs = [key for key, _ in itertools.groupby(j.pattern for j in jobs)]
    assert len(runs) == len(set(runs))
    # the cache was warmed with exactly one plan per group
    assert merged.meta["plan_cache"]["misses"] == len(groups)
    assert len(cache) == len(groups)


def test_plan_multi_node_grouped_same_coverage_and_makespan_class():
    """Grouping reorders scheduling but repairs the same stripes with valid
    plans; ungrouped jobs carry no pattern."""
    cluster, code, layout, dead, repl = _multinode_scenario()
    merged_plain, jobs_plain = plan_multi_node(cluster, code, layout, dead, repl)
    merged_grp, jobs_grp = plan_multi_node(
        cluster, code, layout, dead, repl, group_patterns=True
    )
    assert all(j.pattern is None for j in jobs_plain)
    assert sorted(j.stripe_id for j in jobs_plain) == sorted(j.stripe_id for j in jobs_grp)
    t_plain = FluidSimulator(cluster).run(merged_plain.tasks).makespan
    t_grp = FluidSimulator(cluster).run(merged_grp.tasks).makespan
    assert t_grp > 0 and t_plain > 0


# --------------------------------------------------------------------- #
# workspace executor: batch mode
# --------------------------------------------------------------------- #
def test_executor_batch_bit_exact_and_metered():
    code = get_code(6, 3, 8)
    ex = PlanExecutor(Workspace())
    rng = np.random.default_rng(5)
    requests, expect = [], {}
    for sid in range(5):
        placement = list(range(10 + sid, 10 + sid + code.n))
        stripe = Stripe(sid, code.k, code.m, placement)
        data = rng.integers(0, 256, size=(code.k, 1024)).astype(np.uint8)
        blocks = code.encode_stripe(data)
        failed = [1, 4] if sid % 2 == 0 else [2]
        survivors = [i for i in range(code.n) if i not in failed][: code.k]
        for b in survivors:
            ex.ws.put(placement[b], block_name(sid, b), blocks[b])
        dest = {fb: 200 + sid * 4 + i for i, fb in enumerate(failed)}
        requests.append(
            BatchRepairRequest(stripe=stripe, survivors=survivors, failed=failed, dest=dest)
        )
        expect[sid] = {fb: blocks[fb] for fb in failed}
    engine = BatchRepairEngine(code)
    report = ex.execute_batch(requests, engine, verify_against=expect)
    assert report.stripes == 5
    assert report.pattern_groups == 2  # {1,4} x3 and {2} x2
    assert report.plan_misses == 2 and report.plan_hits == 0
    assert report.total_compute_seconds > 0
    assert report.critical_compute_seconds <= report.total_compute_seconds
    assert report.gf_bytes_processed == 5 * code.k * 1024
    # repaired blocks landed at their destination nodes
    for req in requests:
        for fb, dest in req.dest.items():
            got = ex.ws.get(dest, block_name(req.stripe.stripe_id, fb))
            assert np.array_equal(got, expect[req.stripe.stripe_id][fb])
    # second identical round hits the warmed cache
    report2 = ex.execute_batch(requests, engine)
    assert report2.plan_hits == 2 and report2.plan_misses == 0


def test_executor_batch_detects_corruption():
    code = get_code(4, 2, 8)
    ex = PlanExecutor(Workspace())
    rng = np.random.default_rng(6)
    data = rng.integers(0, 256, size=(4, 64)).astype(np.uint8)
    blocks = code.encode_stripe(data)
    stripe = Stripe(0, 4, 2, list(range(6)))
    for b in range(4):
        ex.ws.put(b, block_name(0, b), blocks[b])
    req = BatchRepairRequest(stripe=stripe, survivors=[0, 1, 2, 3], failed=[4], dest={4: 50})
    engine = BatchRepairEngine(code)
    wrong = {0: {4: np.zeros(64, dtype=np.uint8)}}
    with pytest.raises(AssertionError):
        ex.execute_batch([req], engine, verify_against=wrong)


def test_executor_batch_rejects_non_engine():
    ex = PlanExecutor(Workspace())
    with pytest.raises(TypeError):
        ex.execute_batch([], engine=object())
