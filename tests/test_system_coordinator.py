"""End-to-end coordinator tests: write / read / fail / detect / repair."""

import numpy as np
import pytest

from repro.cluster.bandwidth import make_wld
from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.system.coordinator import Coordinator


def make_system(n_data=18, n_spare=4, k=4, m=2, seed=0, rack_size=None, block_bytes=2048):
    ds = make_wld(n_data + n_spare, "WLD-4x", seed=seed)
    nodes = []
    for i in range(n_data):
        rack = i // rack_size if rack_size else 0
        nodes.append(Node(i, float(ds.uplinks[i]), float(ds.downlinks[i]), rack=rack))
    cluster = Cluster(nodes)
    coord = Coordinator(cluster, RSCode(k, m), block_bytes=block_bytes, block_size_mb=16.0, rng=seed)
    for j in range(n_spare):
        i = n_data + j
        rack = (i // rack_size) if rack_size else 0
        coord.add_spare(Node(i, float(ds.uplinks[i]), float(ds.downlinks[i]), rack=rack))
    return coord


def payload(nbytes, seed=0):
    return np.random.default_rng(seed).integers(0, 256, size=nbytes, dtype=np.uint8).tobytes()


def test_write_read_roundtrip():
    coord = make_system()
    data = payload(30_000)
    receipt = coord.write("f1", data)
    assert receipt.nbytes == 30_000
    assert receipt.padded_bytes % (4 * 2048) == 0
    assert coord.read("f1") == data


def test_write_duplicate_name_rejected():
    coord = make_system()
    coord.write("f1", payload(100))
    with pytest.raises(KeyError):
        coord.write("f1", payload(100))
    with pytest.raises(KeyError):
        coord.read("nope")


def test_write_distributes_blocks_to_distinct_nodes():
    coord = make_system()
    coord.write("f1", payload(10_000))
    for stripe in coord.layout:
        assert len(set(stripe.placement)) == stripe.n
        assert all(n not in coord.spares for n in stripe.placement)


def test_degraded_read_within_m_failures():
    coord = make_system()
    data = payload(50_000, seed=1)
    coord.write("f1", data)
    coord.crash_node(0)
    coord.crash_node(1)
    assert coord.read("f1") == data


def test_read_fails_beyond_m_failures():
    coord = make_system(k=4, m=2)
    data = payload(8 * 2048, seed=2)  # exactly one stripe
    coord.write("f1", data)
    stripe = coord.layout.stripes[0]
    for node in stripe.placement[:3]:  # 3 > m = 2
        coord.crash_node(node)
    with pytest.raises(IOError):
        coord.read("f1")


def test_heartbeat_failure_detection_flow():
    coord = make_system()
    coord.write("f1", payload(5_000))
    coord.beat_alive(0.0)
    coord.crash_node(3)
    coord.beat_alive(50.0)
    dead = coord.detect_failures(now=60.0)
    assert dead == [3]
    assert not coord.cluster[3].alive


@pytest.mark.parametrize("scheme", ["cr", "ir", "hmbr"])
def test_repair_restores_redundancy(scheme):
    coord = make_system(seed=3)
    data = payload(60_000, seed=3)
    coord.write("f1", data)
    coord.crash_node(0)  # crash_node marks the cluster node dead directly;
    coord.crash_node(1)  # heartbeat detection is covered in its own test
    report = coord.repair(scheme=scheme)
    assert report.scheme == scheme
    assert report.blocks_recovered >= 1
    assert report.simulated_transfer_s > 0
    assert coord.read("f1") == data
    # repaired blocks now live on (previously) spare nodes
    for sid in report.stripes_repaired:
        stripe = next(s for s in coord.layout if s.stripe_id == sid)
        assert all(coord.agents[n].alive for n in stripe.placement)


def test_repair_is_idempotent():
    coord = make_system(seed=4)
    coord.write("f1", payload(20_000, seed=4))
    coord.crash_node(2)
    first = coord.repair(scheme="hmbr")
    second = coord.repair(scheme="hmbr")
    assert first.blocks_recovered >= 0
    assert second.blocks_recovered == 0
    assert second.stripes_repaired == []


def test_repair_unknown_scheme():
    coord = make_system()
    with pytest.raises(ValueError):
        coord.repair(scheme="bogus")


def test_repair_requires_enough_spares():
    coord = make_system(n_spare=1, seed=5)
    coord.write("f1", payload(120_000, seed=5))
    coord.crash_node(0)
    coord.crash_node(1)
    with pytest.raises(RuntimeError):
        coord.repair()


def test_repair_after_rack_failure_with_rack_layout():
    coord = make_system(n_data=16, n_spare=4, rack_size=4, seed=6, k=4, m=2)
    data = payload(40_000, seed=6)
    coord.write("f1", data)
    # kill two nodes of one rack (within m = 2)
    coord.crash_node(0)
    coord.crash_node(1)
    report = coord.repair(scheme="hmbr")
    assert coord.read("f1") == data
    assert report.compute_s_total >= 0


def test_block_bytes_must_be_word_aligned():
    cluster = Cluster([Node(i, 100, 100) for i in range(8)])
    with pytest.raises(ValueError):
        Coordinator(cluster, RSCode(4, 2), block_bytes=1001)
