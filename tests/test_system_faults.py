"""Unit tests for the fault-injection layer (:mod:`repro.faults`).

The chaos harness in ``tests/chaos`` exercises whole repairs; these tests
pin the building blocks in isolation: schedule construction and replay,
injector clock/firing semantics, transfer gating order, journal-resumable
op execution, and the bus's strict byte validation.
"""

import numpy as np
import pytest

from repro.faults import (
    DeadAgent,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    NodeFlapping,
    TransferDropped,
)
from repro.gf.field import gf8
from repro.repair.executor import ExecutionJournal
from repro.repair.plan import CombineOp, TransferOp
from repro.system.agent import Agent, run_plan_ops
from repro.system.bus import DataBus


# --------------------------------------------------------------------- #
# FaultSchedule
# --------------------------------------------------------------------- #
def test_schedule_sorts_validates_and_round_trips():
    sched = FaultSchedule.from_tuples(
        [(0.5, "kill", 3), (0.1, "drop", 1), (0.3, "slow", 2, 6.0)]
    )
    assert [e.time for e in sched] == [0.1, 0.3, 0.5]
    assert FaultSchedule.from_tuples(sched.to_tuples()) == sched
    assert [e.target for e in sched.kills()] == [3]
    assert len(FaultSchedule.empty()) == 0


@pytest.mark.parametrize(
    "bad",
    [
        (0.1, "explode", 0),  # unknown kind
        (-0.1, "kill", 0),  # negative time
        (0.1, "flap", 0, 0.0),  # flap needs positive window
        (0.1, "delay", 0, -1.0),  # delay needs positive duration
        (0.1, "slow", 0, 1.0),  # slow needs factor > 1
    ],
)
def test_schedule_rejects_invalid_events(bad):
    with pytest.raises(ValueError):
        FaultSchedule.from_tuples([bad])


def test_random_schedule_is_seed_deterministic_and_bounds_kills():
    targets = list(range(10))
    a = FaultSchedule.random(7, targets, n_events=12, max_kills=2)
    b = FaultSchedule.random(7, targets, n_events=12, max_kills=2)
    c = FaultSchedule.random(8, targets, n_events=12, max_kills=2)
    assert a == b, "same seed must replay the identical schedule"
    assert a != c
    kills = a.kills()
    assert len(kills) <= 2
    assert len({e.target for e in kills}) == len(kills), "kill targets distinct"


# --------------------------------------------------------------------- #
# FaultInjector
# --------------------------------------------------------------------- #
def test_injector_fires_in_time_order_and_drains_once():
    sched = FaultSchedule.from_tuples([(0.2, "kill", 1), (0.1, "slow", 2, 3.0)])
    inj = FaultInjector(sched, tick_s=0.05)
    assert inj.advance(0.0) == []
    assert inj.next_event_time() == pytest.approx(0.1)
    fired = inj.advance(0.15)
    assert [e.kind for e in fired] == ["slow"]
    assert inj.slowdown(2) == 3.0 and inj.slowdown(1) == 1.0
    fired = inj.tick()  # 0.15 -> 0.20: the kill fires exactly at its time
    assert [e.kind for e in fired] == ["kill"]
    assert inj.is_killed(1) and not inj.responsive(1)
    # drain returns everything fired since construction, then nothing
    assert [e.kind for e in inj.drain_fired()] == ["slow", "kill"]
    assert inj.drain_fired() == []
    with pytest.raises(ValueError):
        inj.advance(-1.0)


def test_injector_flap_window_and_exhaustion():
    inj = FaultInjector(FaultSchedule.from_tuples([(0.1, "flap", 4, 0.5)]))
    inj.advance(0.1)
    assert not inj.responsive(4)
    assert inj.flapping_until(4) == pytest.approx(0.6)
    with pytest.raises(NodeFlapping):
        inj.check_transfer(4, 9, 100)
    inj.advance(0.6)  # past the window
    assert inj.responsive(4)
    inj.check_transfer(4, 9, 100)  # no longer raises
    assert inj.exhausted


def test_injector_transfer_gating_order():
    """Armed delays apply (advancing the clock) before drops raise."""
    sched = FaultSchedule.from_tuples(
        [(0.0, "delay", 5, 0.25), (0.0, "drop", 5)]
    )
    inj = FaultInjector(sched)
    inj.advance(0.0)
    with pytest.raises(TransferDropped):
        inj.check_transfer(5, 6, 100)
    assert inj.delays_consumed == 1 and inj.drops_consumed == 1
    assert inj.now == pytest.approx(0.25), "the delay advanced the clock"
    assert inj.delay_accrued_s == pytest.approx(0.25)
    inj.check_transfer(5, 6, 100)  # both one-shots consumed
    assert inj.exhausted


def test_injector_delay_can_fire_later_events_mid_transfer():
    """A consumed delay advances the clock across another event's fire time;
    the nested firing must land in the drain queue for the caller."""
    sched = FaultSchedule.from_tuples([(0.0, "delay", 5, 1.0), (0.5, "kill", 7)])
    inj = FaultInjector(sched)
    inj.advance(0.0)
    inj.drain_fired()  # the armed delay
    with pytest.raises(DeadAgent):
        # the delay fires first, advancing past 0.5 and killing 7 — which is
        # the destination, so the dead-peer check then trips
        inj.check_transfer(5, 7, 100)
    assert [e.kind for e in inj.drain_fired()] == ["kill"]
    assert inj.is_killed(7)


def test_injector_kill_gates_transfers_and_attach_detach():
    inj = FaultInjector(FaultSchedule.from_tuples([(0.0, "kill", 2)]))
    inj.advance(0.0)
    with pytest.raises(DeadAgent):
        inj.check_transfer(2, 3, 10)
    with pytest.raises(DeadAgent):
        inj.check_transfer(3, 2, 10)
    bus = DataBus()
    inj.attach(bus)
    assert bus.fault_hook == inj.check_transfer  # bound-method equality
    with pytest.raises(DeadAgent):
        bus.check(2, 3, 10)
    inj.detach(bus)
    assert bus.fault_hook is None
    bus.check(2, 3, 10)  # no hook: no-op


# --------------------------------------------------------------------- #
# journal-resumable execution
# --------------------------------------------------------------------- #
def _two_agents_with_data():
    a, b = Agent(0), Agent(1)
    a.scratch["x"] = np.arange(32, dtype=gf8.dtype)
    a.scratch["y"] = np.arange(32, dtype=gf8.dtype)[::-1].copy()
    return a, b


def test_run_plan_ops_resumes_from_journal():
    a, b = _two_agents_with_data()
    bus = DataBus()
    ops = [
        CombineOp(node=0, srcs=("x", "y"), coeffs=(1, 1), out="z"),
        TransferOp(src_node=0, dst_node=1, name="z"),
        TransferOp(src_node=0, dst_node=1, name="x", rename="x2"),
    ]
    journal = ExecutionJournal()
    run_plan_ops(ops, {0: a, 1: b}, bus, journal=journal)
    assert journal.completed == 3
    assert bus.transfer_count == 2

    # resume: nothing left to do, so nothing is redone
    run_plan_ops(ops, {0: a, 1: b}, bus, journal=journal)
    assert bus.transfer_count == 2

    # partial journal: only the ops after the checkpoint run
    journal2 = ExecutionJournal(completed=2)
    run_plan_ops(ops, {0: a, 1: b}, bus, journal=journal2)
    assert bus.transfer_count == 3
    assert journal2.completed == 3
    assert np.array_equal(b.scratch["x2"], a.scratch["x"])


def test_journal_reset():
    j = ExecutionJournal(completed=5, transfers=2, transfer_bytes=1024)
    j.reset()
    assert (j.completed, j.transfers, j.transfer_bytes) == (0, 0, 0)


# --------------------------------------------------------------------- #
# DataBus.record strictness (satellite: reject nonsense byte counts)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("nbytes", [0, -1, -4096])
def test_bus_record_rejects_nonpositive_nbytes(nbytes):
    bus = DataBus()
    with pytest.raises(ValueError, match="must be positive"):
        bus.record(0, 1, nbytes)
    assert bus.total_bytes() == 0 and bus.transfer_count == 0


def test_bus_record_accounts_positive_transfers():
    bus = DataBus(rack_of={0: 0, 1: 0, 2: 1})
    bus.record(0, 1, 100)  # same rack
    bus.record(0, 2, 50)  # cross rack
    assert bus.total_bytes() == 150
    assert bus.sent_bytes == {0: 150}
    assert bus.received_bytes == {1: 100, 2: 50}
    assert bus.cross_rack_bytes == 50
    assert bus.transfer_count == 2


def test_empty_buffer_send_delivers_but_meters_nothing():
    """Degenerate split fractions produce empty slices: the buffer must
    arrive (downstream concats read it) without touching the meter."""
    a, b = Agent(0), Agent(1)
    a.scratch["e"] = np.empty(0, dtype=gf8.dtype)
    bus = DataBus()
    a.send_to(b, "e", None, bus)
    assert "e" in b.scratch and b.scratch["e"].size == 0
    assert bus.total_bytes() == 0 and bus.transfer_count == 0


# --------------------------------------------------------------------- #
# backoff: capped exponential with deterministic jitter
# --------------------------------------------------------------------- #
def test_backoff_delay_sequence_is_capped_exponential():
    from repro.faults.runtime import DEFAULT_MAX_BACKOFF_S, backoff_delay

    delays = [backoff_delay(a, 0.5) for a in range(1, 12)]
    # doubles until the 30 s default ceiling, then stays pinned there
    assert delays[:7] == [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 30.0]
    assert all(d == DEFAULT_MAX_BACKOFF_S for d in delays[6:])
    # a custom ceiling clamps earlier
    assert backoff_delay(10, 0.5, max_s=2.0) == 2.0
    # huge attempt counts must not overflow float exponentiation
    assert backoff_delay(5000, 0.5) == DEFAULT_MAX_BACKOFF_S


def test_backoff_delay_jitter_is_deterministic_bounded_and_keyed():
    from repro.faults.runtime import backoff_delay

    base = backoff_delay(3, 0.5)  # 2.0 un-jittered
    a = backoff_delay(3, 0.5, jitter_frac=0.25, seed=7, key=11)
    b = backoff_delay(3, 0.5, jitter_frac=0.25, seed=7, key=11)
    assert a == b, "same (seed, key, attempt) must replay the same delay"
    assert base * 0.75 <= a <= base * 1.25
    # different stripes (keys) desynchronize
    c = backoff_delay(3, 0.5, jitter_frac=0.25, seed=7, key=12)
    assert a != c
    # jitter never pierces the ceiling
    for attempt in range(1, 20):
        assert backoff_delay(attempt, 4.0, max_s=10.0, jitter_frac=0.5, seed=1) <= 10.0


def test_backoff_delay_validation():
    from repro.faults.runtime import backoff_delay

    with pytest.raises(ValueError, match="attempt"):
        backoff_delay(0, 1.0)
    with pytest.raises(ValueError, match="non-negative"):
        backoff_delay(1, -1.0)
    with pytest.raises(ValueError, match="jitter_frac"):
        backoff_delay(1, 1.0, jitter_frac=1.0)
