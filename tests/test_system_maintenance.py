"""Coordinator maintenance paths: auto scheme, scrub, delete, stats."""

import numpy as np
import pytest

from repro.ec.stripe import block_name
from tests.test_system_coordinator import make_system, payload


def test_auto_scheme_repair():
    coord = make_system(seed=9)
    data = payload(40_000, seed=9)
    coord.write("f1", data)
    coord.crash_node(0)
    coord.crash_node(1)
    report = coord.repair(scheme="auto")
    assert report.blocks_recovered >= 1
    assert coord.read("f1") == data


def test_scrub_healthy_system():
    coord = make_system(seed=10)
    coord.write("f1", payload(30_000, seed=10))
    health = coord.scrub()
    assert health and all(health.values())


def test_scrub_detects_silent_corruption():
    coord = make_system(seed=11)
    coord.write("f1", payload(20_000, seed=11))
    stripe = coord.layout.stripes[0]
    node = stripe.placement[0]
    blk = coord.agents[node].read_block(block_name(stripe.stripe_id, 0))
    corrupted = blk.copy()
    corrupted[0] ^= 0xFF
    coord.agents[node].store_block(
        block_name(stripe.stripe_id, 0), corrupted, overwrite=True
    )
    health = coord.scrub()
    assert health[stripe.stripe_id] is False
    others = {sid: ok for sid, ok in health.items() if sid != stripe.stripe_id}
    assert all(others.values())


def test_scrub_flags_stripes_on_dead_nodes():
    coord = make_system(seed=12)
    coord.write("f1", payload(30_000, seed=12))
    coord.crash_node(0)
    health = coord.scrub()
    affected = {
        s.stripe_id for s in coord.layout if 0 in s.placement
    }
    for sid, ok in health.items():
        assert ok == (sid not in affected)


def test_delete_frees_blocks():
    coord = make_system(seed=13)
    coord.write("f1", payload(25_000, seed=13))
    coord.write("f2", payload(25_000, seed=14))
    before = coord.stats()["blocks_stored"]
    freed = coord.delete("f1")
    after = coord.stats()
    assert freed > 0
    assert after["blocks_stored"] == before - freed
    with pytest.raises(KeyError):
        coord.read("f1")
    with pytest.raises(KeyError):
        coord.delete("f1")
    assert coord.read("f2") == payload(25_000, seed=14)


def test_stats_snapshot():
    coord = make_system(n_data=10, n_spare=2, seed=15)
    s0 = coord.stats()
    assert s0["nodes_alive"] == 12 and s0["spares_free"] == 2
    assert s0["files"] == 0 and s0["stripes"] == 0
    coord.write("f1", payload(10_000, seed=15))
    coord.crash_node(0)
    coord.repair()
    s1 = coord.stats()
    assert s1["files"] == 1
    assert s1["nodes_dead"] == 1
    assert s1["spares_free"] <= 1  # one spare may now hold repaired blocks
    assert s1["bus_bytes"] >= 0
