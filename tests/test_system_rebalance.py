"""Rebalancer tests."""

import pytest

from tests.test_system_coordinator import make_system, payload


def spread(coord):
    counts = coord.layout.blocks_per_node()
    alive = [counts.get(i, 0) for i in coord.cluster.alive_ids()]
    return max(alive) - min(alive)


def test_rebalance_reduces_spread_after_repair():
    coord = make_system(n_data=12, n_spare=3, seed=41, k=4, m=2)
    coord.write("f", payload(60_000, seed=41))
    data = coord.read("f")
    # two failure/repair cycles pile blocks onto ex-spares
    coord.crash_node(0)
    coord.crash_node(1)
    coord.repair()
    before = spread(coord)
    stats = coord.rebalance()
    after = spread(coord)
    assert after <= before
    assert after <= 1 or stats["moves"] == 0
    # data still fully intact and parity-consistent
    assert coord.read("f") == data
    assert all(coord.scrub().values())


def test_rebalance_respects_stripe_distinctness():
    coord = make_system(n_data=12, n_spare=3, seed=42, k=4, m=2)
    coord.write("f", payload(50_000, seed=42))
    coord.crash_node(2)
    coord.repair()
    coord.rebalance()
    for stripe in coord.layout:
        assert len(set(stripe.placement)) == stripe.n


def test_rebalance_move_budget():
    coord = make_system(n_data=12, n_spare=3, seed=43, k=4, m=2)
    coord.write("f", payload(80_000, seed=43))
    coord.crash_node(0)
    coord.repair()
    stats = coord.rebalance(max_moves=1)
    assert stats["moves"] <= 1


def test_rebalance_noop_when_balanced():
    coord = make_system(n_data=8, n_spare=2, seed=44, k=4, m=2)
    coord.write("f", payload(10_000, seed=44))
    coord.rebalance()  # settle
    stats = coord.rebalance()
    assert stats["moves"] <= 1  # already within tolerance
