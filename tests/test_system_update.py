"""Delta-parity update-path tests."""

import numpy as np
import pytest

from tests.test_system_coordinator import make_system, payload


def test_update_roundtrip_and_parity_consistency():
    coord = make_system(seed=31)
    data = bytearray(payload(30_000, seed=31))
    coord.write("f", bytes(data))
    patch = payload(500, seed=32)
    stats = coord.update("f", offset=1234, patch=patch)
    data[1234 : 1234 + 500] = patch
    assert coord.read("f") == bytes(data)
    assert stats["blocks_patched"] >= 1
    assert stats["parity_deltas"] == stats["blocks_patched"] * coord.code.m
    # parity must still verify (scrub recomputes and compares)
    assert all(coord.scrub().values())


def test_update_spanning_blocks_and_stripes():
    coord = make_system(seed=33, block_bytes=2048)
    data = bytearray(payload(40_000, seed=33))
    coord.write("f", bytes(data))
    # patch crossing multiple block boundaries
    patch = payload(6000, seed=34)
    stats = coord.update("f", offset=1000, patch=patch)
    data[1000:7000] = patch
    assert coord.read("f") == bytes(data)
    assert stats["blocks_patched"] >= 3
    assert all(coord.scrub().values())


def test_update_validation():
    coord = make_system(seed=35)
    coord.write("f", payload(1000, seed=35))
    with pytest.raises(KeyError):
        coord.update("missing", 0, b"x")
    with pytest.raises(ValueError):
        coord.update("f", 999, b"xx")  # runs past end of file
    with pytest.raises(ValueError):
        coord.update("f", -1, b"x")


def test_update_then_repair_preserves_new_content():
    """Repair after an update must reconstruct the *updated* block."""
    coord = make_system(seed=36)
    data = bytearray(payload(25_000, seed=36))
    coord.write("f", bytes(data))
    patch = payload(800, seed=37)
    coord.update("f", offset=0, patch=patch)
    data[:800] = patch
    # crash the node holding the stripe-0 block that starts at offset 0
    victim = coord.layout.stripes[0].placement[0]
    coord.crash_node(victim)
    coord.repair(scheme="hmbr")
    assert coord.read("f") == bytes(data)


def test_update_survives_degraded_parity_node():
    """Updating while a parity node is down: data updates, dead parity is
    skipped, and the subsequent repair reconstructs consistent parity."""
    coord = make_system(seed=38)
    data = bytearray(payload(8 * 2048, seed=38))  # exactly one stripe
    coord.write("f", bytes(data))
    stripe = coord.layout.stripes[0]
    parity_node = stripe.placement[coord.code.k]  # first parity block's node
    coord.crash_node(parity_node)
    patch = payload(300, seed=39)
    coord.update("f", offset=100, patch=patch)
    data[100:400] = patch
    assert coord.read("f") == bytes(data)
    coord.repair(scheme="cr")
    assert all(coord.scrub().values())
    assert coord.read("f") == bytes(data)
