"""The storage system under genuinely wide stripes."""

import numpy as np
import pytest

from repro.cluster.bandwidth import make_wld
from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.system.coordinator import Coordinator


def wide_system(k=32, m=8, n_data=48, n_spare=8, seed=0):
    ds = make_wld(n_data + n_spare, "WLD-8x", seed=seed)
    cluster = Cluster(
        [Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])) for i in range(n_data)]
    )
    coord = Coordinator(cluster, RSCode(k, m), block_bytes=2048, block_size_mb=64.0, rng=seed)
    for j in range(n_spare):
        i = n_data + j
        coord.add_spare(Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])))
    return coord


def test_wide_stripe_write_repair_cycle():
    coord = wide_system()
    rng = np.random.default_rng(1)
    data = rng.integers(0, 256, size=3 * 32 * 2048, dtype=np.uint8).tobytes()
    coord.write("wide", data)
    assert all(s.n == 40 for s in coord.layout)
    # kill four nodes that hold blocks (multi-block failures guaranteed:
    # stripes are 40 wide over 48 nodes)
    victims = list(coord.layout.stripes[0].placement[:4])
    for v in victims:
        coord.crash_node(v)
    report = coord.repair(scheme="hmbr")
    assert report.blocks_recovered >= 4
    assert coord.read("wide") == data
    assert all(coord.scrub().values())


def test_wide_stripe_repair_beats_cr_in_system():
    results = {}
    for scheme in ("cr", "hmbr"):
        coord = wide_system(seed=2)
        rng = np.random.default_rng(2)
        data = rng.integers(0, 256, size=32 * 2048, dtype=np.uint8).tobytes()
        coord.write("f", data)
        victims = list(coord.layout.stripes[0].placement[:4])
        for v in victims:
            coord.crash_node(v)
        results[scheme] = coord.repair(scheme=scheme).simulated_transfer_s
    assert results["hmbr"] <= results["cr"] + 1e-9


def test_encode_wrong_block_count_rejected():
    code = RSCode(4, 2)
    with pytest.raises(ValueError):
        code.encode(np.zeros((3, 8), dtype=np.uint8))
    with pytest.raises(ValueError):
        code.encode(np.zeros(8, dtype=np.uint8))  # not 2-D


def test_decode_uses_lowest_indices_when_overprovisioned():
    code = RSCode(3, 2)
    rng = np.random.default_rng(3)
    data = rng.integers(0, 256, size=(3, 32), dtype=np.uint8)
    stripe = code.encode_stripe(data)
    # all 4 survivors given; decode must still be exact
    avail = {i: stripe[i] for i in (0, 2, 3, 4)}
    out = code.decode(avail, [1])
    assert np.array_equal(out[1], stripe[1])
