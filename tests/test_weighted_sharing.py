"""Weighted fair sharing and repair-throttling tests."""

import numpy as np
import pytest

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.repair.plan import reweighted
from repro.simnet.flows import Flow, PipelineFlow
from repro.simnet.fluid import FluidSimulator, _Resource


def two_senders_one_link():
    return Cluster([Node(0, 100, 1000), Node(1, 1000, 1000)])


def test_weight_validation():
    with pytest.raises(ValueError):
        Flow("f", 0, 1, 1.0, weight=0.0)
    with pytest.raises(ValueError):
        PipelineFlow("p", (0, 1), 1.0, weight=-1.0)


def test_weighted_split_on_shared_uplink():
    """Weights 1 and 3 on a 100 MB/s uplink -> 25 and 75 MB/s."""
    cl = two_senders_one_link()
    flows = [
        Flow("light", 0, 1, 25.0, weight=1.0),
        Flow("heavy", 0, 1, 75.0, weight=3.0),
    ]
    res = FluidSimulator(cl).run(flows)
    # sized proportionally to their shares, both finish together at t = 1
    assert res.finish_times["light"] == pytest.approx(1.0)
    assert res.finish_times["heavy"] == pytest.approx(1.0)


def test_weighted_flow_still_capped_elsewhere():
    """A heavy weight cannot push a flow past another bottleneck."""
    cl = Cluster([Node(0, 100, 100), Node(1, 100, 10), Node(2, 100, 100)])
    flows = [
        Flow("a", 0, 1, 10.0, weight=100.0),  # receiver downlink 10 binds
        Flow("b", 0, 2, 90.0, weight=1.0),
    ]
    res = FluidSimulator(cl).run(flows)
    # flow a gets only 10 (its receiver), b picks up the remaining 90
    assert res.finish_times["a"] == pytest.approx(1.0)
    assert res.finish_times["b"] == pytest.approx(1.0)


def test_reference_allocator_weighted():
    resources = {"up": _Resource(100.0)}
    active = {"x": ["up"], "y": ["up"]}
    rates = FluidSimulator._allocate(active, resources, weights={"x": 1.0, "y": 4.0})
    assert rates["x"] == pytest.approx(20.0)
    assert rates["y"] == pytest.approx(80.0)


def test_vectorized_matches_reference_with_weights():
    rng = np.random.default_rng(0)
    for seed in range(10):
        rng = np.random.default_rng(seed)
        res_keys = [f"r{i}" for i in range(6)]
        caps = {r: float(rng.uniform(10, 100)) for r in res_keys}
        flows = {
            f"f{i}": [res_keys[j] for j in rng.choice(6, size=2, replace=True)]
            for i in range(8)
        }
        weights = {f: float(rng.uniform(0.2, 4.0)) for f in flows}
        resources = {r: _Resource(caps[r]) for r in res_keys}
        ref = FluidSimulator._allocate(dict(flows), resources, weights)
        tids = sorted(flows)
        alloc = FluidSimulator._VectorAllocator(tids, flows, res_keys, weights)
        vec = alloc.allocate(np.ones(len(tids), dtype=bool), np.array([caps[r] for r in res_keys]))
        for tid in tids:
            assert vec[alloc.flow_index[tid]] == pytest.approx(ref[tid], rel=1e-9)


def test_reweighted_plan_helper():
    from repro.repair.hybrid import plan_hybrid
    from tests.conftest import make_repair_ctx

    ctx = make_repair_ctx(k=6, m=3, f=2)
    plan = plan_hybrid(ctx)
    throttled = reweighted(plan, 0.25)
    assert all(t.weight == 0.25 for t in throttled.tasks)
    assert all(t.weight == 1.0 for t in plan.tasks)  # original untouched
    assert throttled.meta["weight"] == 0.25
    with pytest.raises(ValueError):
        reweighted(plan, 0.0)


def test_throttled_repair_protects_foreground_reads():
    """Weight-0.2 repair: reads stretch less, repair takes longer."""
    from repro.experiments.common import build_scenario, plan_for
    from repro.simnet.flows import Flow as F

    sc = build_scenario(16, 8, 4, wld="WLD-4x", seed=2023)
    ctx = sc.ctx
    rng = np.random.default_rng(9)
    reads = []
    nodes = ctx.cluster.alive_ids()
    for i in range(16):
        a, b = rng.choice(nodes, size=2, replace=False)
        reads.append(F(f"read{i}", int(a), int(b), 16.0))
    sim = FluidSimulator(ctx.cluster)
    plan = plan_for(ctx, "hmbr")
    full = sim.run(plan.tasks + reads)
    throttled = reweighted(plan, 0.2)
    gentle = sim.run(throttled.tasks + reads)

    def read_p95(res):
        times = sorted(res.finish_times[r.task_id] for r in reads)
        return times[int(0.95 * (len(times) - 1))]

    def repair_finish(res, p):
        return max(res.finish_times[t.task_id] for t in p.tasks)

    assert read_p95(gentle) <= read_p95(full) + 1e-9
    assert repair_finish(gentle, throttled) >= repair_finish(full, plan) - 1e-9
