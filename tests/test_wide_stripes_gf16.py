"""Ultra-wide stripes: beyond GF(2^8)'s 256-element limit, and the VAST code.

The paper cites VAST's (150, 4) wide stripe — which still fits GF(2^8) — but
a library claiming wide-stripe support must also handle k + m > 256, which
forces GF(2^16).  These are full end-to-end repairs at both field widths.
"""

import numpy as np
import pytest

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.ec.stripe import Stripe
from repro.gf.field import GF
from repro.repair.context import RepairContext
from repro.repair.executor import PlanExecutor, Workspace
from repro.repair.hybrid import plan_hybrid
from repro.simnet.fluid import FluidSimulator


def build_ctx(k, m, f, field):
    n = k + m + f
    cluster = Cluster([Node(i, 100.0, 100.0) for i in range(n)])
    code = RSCode(k, m, field)
    stripe = Stripe(0, k, m, list(range(k + m)))
    failed = list(range(f))
    cluster.fail_nodes(failed)
    return RepairContext(
        cluster=cluster,
        code=code,
        stripe=stripe,
        failed_blocks=failed,
        new_nodes=list(range(k + m, n)),
        block_size_mb=64.0,
    )


def run_repair(ctx, length=256, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, ctx.code.field.size, size=(ctx.code.k, length)).astype(
        ctx.code.field.dtype
    )
    full = ctx.code.encode_stripe(data)
    ws = Workspace(field_=ctx.code.field)
    ws.load_stripe(ctx.stripe, full)
    for b in ctx.failed_blocks:
        ws.drop_node(ctx.stripe.placement[b])
    plan = plan_hybrid(ctx)
    PlanExecutor(ws).execute(plan, verify_against={b: full[b] for b in ctx.failed_blocks})
    return plan


def test_vast_150_4_wide_stripe_gf8():
    """VAST's (150, 4) code repairs end-to-end in GF(2^8)."""
    ctx = build_ctx(150, 4, 2, GF(8))
    plan = run_repair(ctx, length=64)
    t = FluidSimulator(ctx.cluster).run(plan.tasks).makespan
    assert t > 0


def test_gf8_limit_enforced():
    with pytest.raises(ValueError):
        RSCode(280, 8, GF(8))


def test_ultra_wide_stripe_gf16():
    """(280, 8): impossible in GF(2^8), repairs end-to-end in GF(2^16)."""
    ctx = build_ctx(280, 8, 2, GF(16))
    plan = run_repair(ctx, length=32)
    assert plan.meta["p0"] >= 0.0


def test_gf16_hybrid_multiblock_f4():
    ctx = build_ctx(60, 8, 4, GF(16))
    run_repair(ctx, length=64, seed=3)
