"""Property tests for the workload generator (ISSUE 6 satellite 1).

Three contracts:

* **determinism** — one seed, one byte-identical trace, across generator
  instances and repeated calls;
* **zipf popularity** — empirical object frequencies converge to the
  spec's theoretical ``rank**-s`` pmf;
* **open-loop arrivals** — arrival times are independent of everything
  service-side: read/write mix, popularity skew, patch size.  Only the
  seed, rate, and duration may move an arrival tick.
"""

import numpy as np
import pytest

from repro.workload import ClientOp, WorkloadGenerator, WorkloadSpec, object_payload
from tests.seeds import DEFAULT_MASTER_SEED, seed_fanout


def _spec(**kw):
    base = dict(
        n_objects=12, object_bytes=4096, duration_s=50.0, rate_ops_s=20.0,
        zipf_s=1.1, read_fraction=0.8, write_bytes=64, seed=DEFAULT_MASTER_SEED,
    )
    base.update(kw)
    return WorkloadSpec(**base)


# ------------------------------------------------------------------ #
# determinism
# ------------------------------------------------------------------ #
@pytest.mark.parametrize("seed", seed_fanout(DEFAULT_MASTER_SEED, 3))
def test_same_seed_byte_identical_trace(seed):
    spec = _spec(seed=seed)
    a = WorkloadGenerator(spec).trace_bytes()
    b = WorkloadGenerator(spec).trace_bytes()
    assert a == b
    assert a  # a 50s x 20ops/s window is never empty
    # and repeated calls on one instance agree too (no hidden RNG state)
    gen = WorkloadGenerator(spec)
    assert gen.trace_bytes() == a
    assert gen.trace_bytes() == a


def test_different_seeds_differ():
    assert (
        WorkloadGenerator(_spec(seed=1)).trace_bytes()
        != WorkloadGenerator(_spec(seed=2)).trace_bytes()
    )


def test_payloads_are_deterministic_and_distinct():
    spec = _spec()
    assert object_payload(spec, 0) == object_payload(spec, 0)
    assert object_payload(spec, 0) != object_payload(spec, 1)
    assert len(object_payload(spec, 0)) == spec.object_bytes
    gen = WorkloadGenerator(spec)
    writes = [op for op in gen.ops() if op.kind == "write"]
    assert writes, "spec must generate some writes"
    op = writes[0]
    assert gen.patch_bytes(op) == gen.patch_bytes(op)
    assert len(gen.patch_bytes(op)) == op.nbytes
    with pytest.raises(ValueError):
        gen.patch_bytes(next(o for o in gen.ops() if o.kind == "read"))


# ------------------------------------------------------------------ #
# zipf popularity
# ------------------------------------------------------------------ #
def test_zipf_empirical_matches_theoretical():
    spec = _spec(duration_s=400.0, rate_ops_s=25.0)  # ~10k ops
    ops = WorkloadGenerator(spec).ops()
    counts = np.zeros(spec.n_objects)
    for op in ops:
        counts[int(op.obj[3:])] += 1
    empirical = counts / counts.sum()
    pmf = spec.zipf_pmf()
    assert pmf == pytest.approx(np.sort(pmf)[::-1])  # rank 0 is hottest
    assert np.abs(empirical - pmf).max() < 0.02
    # the skew is real: the hottest object beats the uniform share clearly
    assert empirical[0] > 2.0 / spec.n_objects


def test_zipf_zero_is_uniform():
    spec = _spec(zipf_s=0.0, duration_s=400.0, rate_ops_s=25.0)
    assert spec.zipf_pmf() == pytest.approx(np.full(spec.n_objects, 1 / spec.n_objects))
    ops = WorkloadGenerator(spec).ops()
    counts = np.zeros(spec.n_objects)
    for op in ops:
        counts[int(op.obj[3:])] += 1
    assert np.abs(counts / counts.sum() - 1 / spec.n_objects).max() < 0.02


# ------------------------------------------------------------------ #
# open-loop arrivals
# ------------------------------------------------------------------ #
def test_arrivals_sorted_within_window():
    spec = _spec()
    arr = WorkloadGenerator(spec).arrivals()
    assert arr == sorted(arr)
    assert all(0.0 < t < spec.duration_s for t in arr)
    ops = WorkloadGenerator(spec).ops()
    assert [op.t_s for op in ops] == arr  # ops ride the arrival stream verbatim


def test_arrivals_independent_of_service_parameters():
    """Open-loop contract: nothing service-side can move an arrival tick.

    Read/write mix, popularity skew, object sizes, and patch sizes all
    change what each op *does* — and consume different numbers of op-detail
    draws — but the arrival substream must be untouched.
    """
    base = _spec()
    baseline = WorkloadGenerator(base).arrivals()
    for variant in (
        _spec(read_fraction=0.0),
        _spec(read_fraction=1.0),
        _spec(zipf_s=0.0),
        _spec(zipf_s=2.5),
        _spec(n_objects=3),
        _spec(object_bytes=1 << 14, write_bytes=1024),
    ):
        assert WorkloadGenerator(variant).arrivals() == baseline
    # ...while rate/duration/seed do move them
    assert WorkloadGenerator(_spec(rate_ops_s=5.0)).arrivals() != baseline
    assert WorkloadGenerator(_spec(seed=DEFAULT_MASTER_SEED + 1)).arrivals() != baseline


def test_arrival_rate_close_to_poisson_mean():
    spec = _spec(duration_s=500.0, rate_ops_s=10.0)
    arr = WorkloadGenerator(spec).arrivals()
    assert len(arr) == pytest.approx(5000, rel=0.1)


# ------------------------------------------------------------------ #
# spec validation
# ------------------------------------------------------------------ #
@pytest.mark.parametrize(
    "kw",
    [
        {"n_objects": 0},
        {"object_bytes": 0},
        {"duration_s": 0.0},
        {"rate_ops_s": 0.0},
        {"zipf_s": -0.1},
        {"read_fraction": 1.5},
        {"write_bytes": 0},
        {"write_bytes": 1 << 20},
    ],
)
def test_spec_rejects_bad_values(kw):
    with pytest.raises(ValueError):
        _spec(**kw)


def test_object_names_and_op_shape():
    spec = _spec()
    assert spec.object_name(0) == "obj0000"
    with pytest.raises(ValueError):
        spec.object_name(spec.n_objects)
    for op in WorkloadGenerator(spec).ops():
        assert isinstance(op, ClientOp)
        assert op.kind in ("read", "write")
        if op.kind == "read":
            assert (op.offset, op.nbytes) == (0, spec.object_bytes)
        else:
            assert 0 <= op.offset <= spec.object_bytes - spec.write_bytes
            assert op.nbytes == spec.write_bytes
