#!/usr/bin/env python
"""Pin the public API surface against ``tests/golden/api_surface.json``.

The public surface is everything ``__all__`` exports from :mod:`repro`
and its subpackages — the documented ``from repro import ...`` style.
This tool snapshots every exported name with its kind and callable
signature to canonical JSON; CI runs ``--check`` so an unreviewed rename,
removal, or signature change turns the build red instead of silently
breaking downstream callers.  Reviewed changes regenerate the golden
with ``--write`` and commit it alongside the code.

Usage::

    PYTHONPATH=src python tools/check_api_surface.py --check   # verify (CI)
    PYTHONPATH=src python tools/check_api_surface.py --write   # regenerate

Additive changes still show up in the golden's diff at review time; the
check is about making every surface change *deliberate*, not freezing
the API forever.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
GOLDEN = REPO / "tests" / "golden" / "api_surface.json"

#: every package whose ``__all__`` is public, in report order.
PUBLIC_MODULES = [
    "repro",
    "repro.adaptive",
    "repro.analysis",
    "repro.cluster",
    "repro.ec",
    "repro.faults",
    "repro.gf",
    "repro.gf.backend",
    "repro.obs",
    "repro.parallel",
    "repro.reliability",
    "repro.repair",
    "repro.sched",
    "repro.simnet",
    "repro.system",
    "repro.workload",
]


def _signature_of(obj) -> str | None:
    """A stable signature string, or None for non-callables/builtins."""
    target = obj
    if inspect.isclass(obj):
        target = obj.__init__
    if not callable(target):
        return None
    try:
        sig = inspect.signature(target)
    except (ValueError, TypeError):
        return None
    params = list(sig.parameters.values())
    if inspect.isclass(obj) and params and params[0].name in ("self", "cls"):
        params = params[1:]
    return "(" + ", ".join(str(p) for p in params) + ")"


def _kind_of(obj) -> str:
    if inspect.ismodule(obj):
        return "module"
    if inspect.isclass(obj):
        return "class"
    if callable(obj):
        return "function"
    return "value"


def snapshot() -> dict:
    """The current surface: module -> exported name -> {kind, signature}."""
    surface: dict[str, dict] = {}
    for modname in PUBLIC_MODULES:
        mod = importlib.import_module(modname)
        exported = getattr(mod, "__all__", None)
        if exported is None:
            raise SystemExit(f"{modname} has no __all__ — the surface must be explicit")
        dupes = {n for n in exported if exported.count(n) > 1}
        if dupes:
            raise SystemExit(f"{modname}.__all__ has duplicates: {sorted(dupes)}")
        entries: dict[str, dict] = {}
        for name in sorted(exported):
            if not hasattr(mod, name):
                raise SystemExit(f"{modname}.__all__ exports missing name {name!r}")
            obj = getattr(mod, name)
            entry: dict = {"kind": _kind_of(obj)}
            sig = _signature_of(obj)
            if sig is not None:
                entry["signature"] = sig
            entries[name] = entry
        surface[modname] = entries
    return surface


def canonical_json(surface: dict) -> str:
    return json.dumps(surface, indent=2, sort_keys=True) + "\n"


def _diff(old: dict, new: dict) -> list[str]:
    """Human-readable drift lines between two snapshots."""
    lines: list[str] = []
    for mod in sorted(set(old) | set(new)):
        o, n = old.get(mod), new.get(mod)
        if o is None:
            lines.append(f"+ module {mod} ({len(n)} names)")
            continue
        if n is None:
            lines.append(f"- module {mod} ({len(o)} names)")
            continue
        for name in sorted(set(o) | set(n)):
            eo, en = o.get(name), n.get(name)
            if eo is None:
                lines.append(f"+ {mod}.{name} {en.get('signature', '')}".rstrip())
            elif en is None:
                lines.append(f"- {mod}.{name}")
            elif eo != en:
                lines.append(
                    f"~ {mod}.{name}: {eo.get('signature', eo['kind'])} -> "
                    f"{en.get('signature', en['kind'])}"
                )
    return lines


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--check", action="store_true", help="fail if the surface drifted from the golden"
    )
    mode.add_argument(
        "--write", action="store_true", help="regenerate the golden from the current code"
    )
    args = ap.parse_args(argv)

    sys.path.insert(0, str(REPO / "src"))
    current = snapshot()
    text = canonical_json(current)

    if args.write:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(text)
        n = sum(len(v) for v in current.values())
        print(f"wrote {GOLDEN.relative_to(REPO)}: {len(current)} modules, {n} names")
        return 0

    if not GOLDEN.exists():
        print(f"FAIL: {GOLDEN.relative_to(REPO)} missing — run --write and commit it")
        return 1
    golden = json.loads(GOLDEN.read_text())
    if golden == current:
        n = sum(len(v) for v in current.values())
        print(f"OK: public API surface matches golden ({n} names)")
        return 0
    print("FAIL: public API surface drifted from tests/golden/api_surface.json")
    for line in _diff(golden, current):
        print("  " + line)
    print("review the change, then regenerate with: "
          "PYTHONPATH=src python tools/check_api_surface.py --write")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
