#!/usr/bin/env python3
"""Validate perf-trajectory artifacts (BENCH_*.json) against schema v1.

Usage::

    python tools/check_bench_schema.py [path ...]

Defaults to the repo-root ``BENCH_batch.json``, ``BENCH_sched.json``,
``BENCH_parallel.json``, ``BENCH_serving.json``,
``BENCH_reliability.json``, and ``BENCH_adaptive.json``.
Exits non-zero (listing every violation) if a document does not match the
schema the benchmarks emit, so CI catches a drifting artifact before it is
uploaded:

* top level: ``schema_version`` (== 1), ``suite`` (non-empty str),
  ``env`` (dict of scalars), ``points`` (non-empty list), nothing else;
* each point: ``bench`` (non-empty str, unique), ``params`` (dict of
  int/float/str/bool), ``metrics`` (non-empty dict of finite numbers);
* at least one point carries a positive ``speedup_x`` metric — the whole
  reason the trajectory exists;
* suite ``batched-multi-stripe-repair`` additionally reports the selected
  GF kernel tier as a non-empty ``env.backend`` string, carries at least
  one point with a positive ``decode_mbps`` metric, and — when a full-
  fidelity (``env.smoke`` false) ``ec_codec.backend_native.gf8`` point is
  present — holds the native tier's ``vs_numpy_x`` to the >= 5x
  acceptance floor;
* suite ``online-serving-plane`` additionally carries a
  ``serving.chunk_sweep`` point whose ``p99_ratio_c{chunks}`` metrics
  (at least two) fall strictly as ``chunks`` grows and never dip below
  1 — pinning that the chunked degraded-read pipeline closes the
  degraded/healthy p99 gap monotonically without beating healthy reads;
* suite ``reliability-simulator`` additionally carries a
  ``reliability.nines`` point whose ``nines_hmbr`` strictly exceeds
  ``nines_cr`` (faster multi-block repair must buy durability), and its
  ``env`` must report a positive ``fastpath_speedup_x`` — the measured
  advantage of metadata-only simulation over byte materialization;
* suite ``adaptive-replan`` additionally carries at least one
  ``adaptive.replan*`` point whose ``t_adaptive_s`` strictly beats
  ``t_static_s``, and its ``env`` must report ``adaptive_speedup_x``
  strictly above 1 — re-planning the remaining volume under churn has to
  win, or the adaptive layer is dead weight.
"""

import json
import math
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCHEMA_VERSION = 1
TOP_KEYS = {"schema_version", "suite", "env", "points"}
SCALARS = (int, float, str, bool)


def check_doc(doc, errors):
    """Append one message per schema violation found in ``doc``."""
    if not isinstance(doc, dict):
        errors.append("top level is not an object")
        return
    if set(doc) != TOP_KEYS:
        errors.append(f"top-level keys {sorted(doc)} != {sorted(TOP_KEYS)}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(f"schema_version {doc.get('schema_version')!r} != {SCHEMA_VERSION}")
    if not (isinstance(doc.get("suite"), str) and doc.get("suite")):
        errors.append("suite must be a non-empty string")
    env = doc.get("env")
    if not isinstance(env, dict) or not all(
        isinstance(v, SCALARS) for v in env.values()
    ):
        errors.append("env must be a dict of scalar values")
    points = doc.get("points")
    if not (isinstance(points, list) and points):
        errors.append("points must be a non-empty list")
        return
    names = []
    for i, point in enumerate(points):
        where = f"points[{i}]"
        if not isinstance(point, dict):
            errors.append(f"{where} is not an object")
            continue
        bench = point.get("bench")
        if not (isinstance(bench, str) and bench):
            errors.append(f"{where}.bench must be a non-empty string")
        else:
            names.append(bench)
        params = point.get("params")
        if not isinstance(params, dict) or not all(
            isinstance(v, SCALARS) for v in params.values()
        ):
            errors.append(f"{where}.params must be a dict of scalar values")
        metrics = point.get("metrics")
        if not (isinstance(metrics, dict) and metrics):
            errors.append(f"{where}.metrics must be a non-empty dict")
            continue
        for key, value in metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                errors.append(f"{where}.metrics[{key!r}] is not a number")
            elif not math.isfinite(value):
                errors.append(f"{where}.metrics[{key!r}] is not finite")
    if len(names) != len(set(names)):
        errors.append("duplicate bench names in points")
    speedups = [
        p["metrics"]["speedup_x"]
        for p in points
        if isinstance(p, dict)
        and isinstance(p.get("metrics"), dict)
        and isinstance(p["metrics"].get("speedup_x"), (int, float))
    ]
    if not any(s > 0 for s in speedups):
        errors.append("no point carries a positive speedup_x metric")
    if doc.get("suite") == "batched-multi-stripe-repair":
        check_batch_backend(doc, points, errors)
    if doc.get("suite") == "online-serving-plane":
        check_chunk_sweep(points, errors)
    if doc.get("suite") == "reliability-simulator":
        check_reliability(doc, points, errors)
    if doc.get("suite") == "adaptive-replan":
        check_adaptive(doc, points, errors)


#: full-fidelity floor for the native kernel tier vs the NumPy tier on
#: the GF(2^8) backend point (mirrors benchmarks/bench_ec_codec.py).
NATIVE_SPEEDUP_FLOOR = 5.0


def check_batch_backend(doc, points, errors):
    """The batch suite must name its kernel tier and pin its throughput."""
    env = doc.get("env")
    backend = env.get("backend") if isinstance(env, dict) else None
    if not (isinstance(backend, str) and backend):
        errors.append("batch suite env needs a non-empty 'backend' string")
    numeric = lambda v: isinstance(v, (int, float)) and not isinstance(v, bool)  # noqa: E731
    mbps = [
        p["metrics"]["decode_mbps"]
        for p in points
        if isinstance(p, dict)
        and isinstance(p.get("metrics"), dict)
        and numeric(p["metrics"].get("decode_mbps"))
    ]
    if not any(v > 0 for v in mbps):
        errors.append("batch suite needs a point with a positive decode_mbps metric")
    smoke = env.get("smoke") if isinstance(env, dict) else None
    native = next(
        (
            p
            for p in points
            if isinstance(p, dict) and p.get("bench") == "ec_codec.backend_native.gf8"
        ),
        None,
    )
    if native is not None and smoke is False:
        metrics = native.get("metrics")
        ratio = metrics.get("vs_numpy_x") if isinstance(metrics, dict) else None
        if not numeric(ratio):
            errors.append("ec_codec.backend_native.gf8 needs a numeric vs_numpy_x")
        elif ratio < NATIVE_SPEEDUP_FLOOR:
            errors.append(
                f"ec_codec.backend_native.gf8 vs_numpy_x ({ratio}) below the "
                f"{NATIVE_SPEEDUP_FLOOR}x native-tier acceptance floor"
            )


def check_chunk_sweep(points, errors):
    """The serving suite must pin a monotone degraded-read chunk sweep."""
    sweep = next(
        (
            p
            for p in points
            if isinstance(p, dict) and p.get("bench") == "serving.chunk_sweep"
        ),
        None,
    )
    if sweep is None:
        errors.append("serving suite lacks a 'serving.chunk_sweep' point")
        return
    metrics = sweep.get("metrics")
    if not isinstance(metrics, dict):
        return  # already reported by the generic point checks
    ratios = {}
    for key, value in metrics.items():
        match = re.fullmatch(r"p99_ratio_c(\d+)", key)
        if match and isinstance(value, (int, float)) and not isinstance(value, bool):
            ratios[int(match.group(1))] = value
    if len(ratios) < 2:
        errors.append("serving.chunk_sweep needs >= 2 p99_ratio_c<chunks> metrics")
        return
    grid = sorted(ratios)
    for a, b in zip(grid, grid[1:]):
        if not ratios[b] < ratios[a]:
            errors.append(
                f"serving.chunk_sweep p99_ratio_c{b} ({ratios[b]}) must be "
                f"< p99_ratio_c{a} ({ratios[a]}): more chunks must help"
            )
    low = min(ratios.values())
    if low < 1.0 - 1e-3:
        errors.append(
            f"serving.chunk_sweep min p99 ratio {low} < 1: degraded reads "
            "cannot beat healthy reads"
        )


def check_reliability(doc, points, errors):
    """The reliability suite must pin HMBR's nines win and the fast path."""
    env = doc.get("env")
    speedup = env.get("fastpath_speedup_x") if isinstance(env, dict) else None
    if (
        isinstance(speedup, bool)
        or not isinstance(speedup, (int, float))
        or not math.isfinite(speedup)
        or speedup <= 0
    ):
        errors.append(
            "reliability suite env needs a positive finite fastpath_speedup_x"
        )
    nines = next(
        (
            p
            for p in points
            if isinstance(p, dict) and p.get("bench") == "reliability.nines"
        ),
        None,
    )
    if nines is None:
        errors.append("reliability suite lacks a 'reliability.nines' point")
        return
    metrics = nines.get("metrics")
    if not isinstance(metrics, dict):
        return  # already reported by the generic point checks
    hmbr = metrics.get("nines_hmbr")
    cr = metrics.get("nines_cr")
    numeric = lambda v: isinstance(v, (int, float)) and not isinstance(v, bool)  # noqa: E731
    if not (numeric(hmbr) and numeric(cr)):
        errors.append("reliability.nines needs numeric nines_hmbr and nines_cr")
        return
    if not hmbr > cr:
        errors.append(
            f"reliability.nines nines_hmbr ({hmbr}) must be strictly greater "
            f"than nines_cr ({cr}): faster repair must buy durability"
        )


def check_adaptive(doc, points, errors):
    """The adaptive suite must pin that re-planning beats the static plan."""
    numeric = lambda v: isinstance(v, (int, float)) and not isinstance(v, bool)  # noqa: E731
    env = doc.get("env")
    speedup = env.get("adaptive_speedup_x") if isinstance(env, dict) else None
    if not numeric(speedup) or not math.isfinite(speedup):
        errors.append("adaptive suite env needs a finite adaptive_speedup_x")
    elif not speedup > 1.0:
        errors.append(
            f"adaptive suite env adaptive_speedup_x ({speedup}) must be "
            "strictly > 1: re-planning under churn has to win"
        )
    replans = [
        p
        for p in points
        if isinstance(p, dict)
        and isinstance(p.get("bench"), str)
        and p["bench"].startswith("adaptive.replan")
    ]
    if not replans:
        errors.append("adaptive suite lacks an 'adaptive.replan*' point")
        return
    for p in replans:
        metrics = p.get("metrics")
        if not isinstance(metrics, dict):
            continue  # already reported by the generic point checks
        t_static = metrics.get("t_static_s")
        t_adaptive = metrics.get("t_adaptive_s")
        if not (numeric(t_static) and numeric(t_adaptive)):
            errors.append(
                f"{p['bench']} needs numeric t_static_s and t_adaptive_s"
            )
        elif not t_adaptive < t_static:
            errors.append(
                f"{p['bench']} t_adaptive_s ({t_adaptive}) must be strictly "
                f"below t_static_s ({t_static})"
            )


def check_file(path: Path) -> list[str]:
    """All schema violations for one artifact file (empty list == valid)."""
    if not path.exists():
        return [f"{path}: missing"]
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON: {exc}"]
    errors: list[str] = []
    check_doc(doc, errors)
    return [f"{path}: {e}" for e in errors]


def main(argv: list[str]) -> int:
    paths = [Path(a) for a in argv] or [
        REPO / "BENCH_batch.json",
        REPO / "BENCH_sched.json",
        REPO / "BENCH_parallel.json",
        REPO / "BENCH_serving.json",
        REPO / "BENCH_reliability.json",
        REPO / "BENCH_adaptive.json",
    ]
    failures = []
    for path in paths:
        errs = check_file(path)
        if errs:
            failures.extend(errs)
        else:
            doc = json.loads(path.read_text())
            print(f"{path}: ok ({len(doc['points'])} point(s), suite {doc['suite']!r})")
    for err in failures:
        print(f"SCHEMA: {err}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
