#!/usr/bin/env python
"""Dead-link check for the repo's markdown documentation.

Scans every ``*.md`` at the repo root and under ``docs/`` for markdown links
and validates the **relative** ones (external ``http(s)``/``mailto`` targets
are out of scope for offline CI): the referenced file or directory must
exist, after resolving against the linking file's directory and stripping
any ``#anchor``.  Pure-anchor links (``#section``) are checked against the
headings of the linking file itself.

Exit status: 0 if every link resolves, 1 otherwise (each miss is listed as
``file:line: target``).

Run:  python tools/check_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# [text](target) — but not images' alt brackets or reference-style defs;
# nested parens in targets don't occur in this repo's docs
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def _anchor_slug(heading: str) -> str:
    """GitHub's heading -> anchor rule: lowercase, spaces to dashes, strip punctuation."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def _headings(md: Path) -> set[str]:
    slugs: set[str] = set()
    in_fence = False
    for line in md.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence and line.startswith("#"):
            slugs.add(_anchor_slug(line.lstrip("#")))
    return slugs


def check(root: Path) -> list[str]:
    files = sorted(root.glob("*.md")) + sorted((root / "docs").glob("*.md"))
    errors: list[str] = []
    for md in files:
        in_fence = False
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
            if in_fence:
                continue
            for target in _LINK.findall(line):
                if target.startswith(_EXTERNAL):
                    continue
                rel = md.relative_to(root)
                if target.startswith("#"):
                    if _anchor_slug(target[1:]) not in _headings(md):
                        errors.append(f"{rel}:{lineno}: broken anchor {target}")
                    continue
                path_part = target.split("#", 1)[0]
                if not (md.parent / path_part).exists():
                    errors.append(f"{rel}:{lineno}: missing {target}")
    return errors


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    errors = check(root)
    if errors:
        print(f"{len(errors)} broken link(s):")
        for e in errors:
            print(f"  {e}")
        return 1
    n_files = len(list(root.glob("*.md"))) + len(list((root / "docs").glob("*.md")))
    print(f"all relative links OK across {n_files} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
