#!/usr/bin/env python
"""Docstring-coverage gate for ``src/repro`` (zero-dependency, ast-based).

Counts documentable definitions — modules, classes, and public functions /
methods (names not starting with ``_``, plus ``__init__`` exempted as
conventionally covered by the class docstring) — and reports the fraction
carrying a docstring.  ``--min PCT`` turns the report into a ratchet gate:
coverage below the floor fails CI, so documentation can only improve.

Run:  python tools/docstring_coverage.py [--min 95.0] [root]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path


def _is_public_def(node: ast.AST) -> bool:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return False
    if node.name == "__init__":
        return False  # documented by the class docstring, by convention here
    return not node.name.startswith("_")


def scan_file(path: Path) -> tuple[int, int, list[str]]:
    """-> (documented, documentable, missing descriptions)."""
    tree = ast.parse(path.read_text())
    documented, total = 0, 0
    missing: list[str] = []

    def visit(node: ast.AST, qual: str) -> None:
        nonlocal documented, total
        is_module = isinstance(node, ast.Module)
        if is_module or _is_public_def(node):
            total += 1
            if ast.get_docstring(node):
                documented += 1
            else:
                missing.append(qual or "<module>")
        name = getattr(node, "name", "")
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                visit(child, f"{qual}.{child.name}" if qual else child.name)

    visit(tree, "")
    return documented, total, missing


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--min", type=float, default=None,
                    help="fail if coverage (%%) falls below this floor")
    ap.add_argument("--verbose", action="store_true",
                    help="list every undocumented definition")
    ap.add_argument("root", nargs="?", default=None,
                    help="package root to scan (default: <repo>/src/repro)")
    args = ap.parse_args(argv[1:])

    root = Path(args.root) if args.root else (
        Path(__file__).resolve().parent.parent / "src" / "repro"
    )
    documented = total = 0
    undocumented: list[str] = []
    for py in sorted(root.rglob("*.py")):
        d, t, missing = scan_file(py)
        documented += d
        total += t
        undocumented.extend(f"{py.relative_to(root)}: {m}" for m in missing)

    pct = 100.0 * documented / total if total else 100.0
    print(f"docstring coverage: {documented}/{total} = {pct:.1f}%")
    if args.verbose and undocumented:
        for item in undocumented:
            print(f"  missing: {item}")
    if args.min is not None and pct < args.min:
        print(f"FAIL: below the --min {args.min:.1f}% ratchet floor")
        if not args.verbose:
            for item in undocumented[:20]:
                print(f"  missing: {item}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
