#!/usr/bin/env python
"""Regenerate the golden fixtures under ``tests/golden/``.

Goldens pin the *numbers* of the paper experiments — small, fast
configurations of exp1 (Fig. 8), exp5 (Fig. 12), and exp6 (Table II) —
as canonical JSON.  ``tests/test_goldens.py`` regenerates each one
in-process and byte-compares it against the committed file, so any
refactor that silently shifts a paper figure turns a test red instead of
quietly corrupting the reproduction.

Every golden config is deterministic: seeds are fixed, and no wall-clock
measurement feeds the outputs (exp6's compute column comes from GF *bytes*
at a pinned :class:`~repro.analysis.breakdown.CostModel` throughput).

Usage::

    PYTHONPATH=src python tools/regen_goldens.py            # rewrite all
    PYTHONPATH=src python tools/regen_goldens.py --check    # verify only
    PYTHONPATH=src python tools/regen_goldens.py exp5       # one fixture
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO / "tests" / "golden"

#: float digits kept in goldens — enough to catch any real numeric drift,
#: few enough to survive benign last-ulp differences across BLAS/libm builds.
FLOAT_DIGITS = 8


def _canon(obj):
    """Canonicalize for byte-stable JSON: numpy scalars out, floats rounded."""
    if isinstance(obj, dict):
        return {str(k): _canon(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    if isinstance(obj, (bool, np.bool_)):
        return bool(obj)
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        return round(float(obj), FLOAT_DIGITS)
    return obj


def canonical_json(rows) -> str:
    return json.dumps(_canon(rows), indent=2, sort_keys=True) + "\n"


# --------------------------------------------------------------------- #
# golden configs: small, fast, deterministic
# --------------------------------------------------------------------- #
def gen_exp1() -> str:
    from repro.experiments.exp1 import run

    rows = run(
        grid=[(6, 3, 2), (9, 3, 3)],
        wlds=["WLD-2x", "WLD-8x"],
        seeds=(2023, 2024),
    )
    return canonical_json(rows)


def gen_exp5() -> str:
    from repro.experiments.exp5 import run

    rows = run(
        cases=[(8, 4, 4)],
        seeds=(2023,),
        n_data_nodes=24,
        n_stripes=12,
        wld="WLD-4x",
    )
    return canonical_json(rows)


def gen_exp6() -> str:
    from repro.experiments.exp6 import run

    rows = run(cases=[(8, 4)], seed=2023, test_block_bytes=1 << 14)
    return canonical_json(rows)


def gen_serving() -> str:
    """The canonical three-regime serving scenario (ISSUE 6).

    One seeded workload served five ways — healthy, degraded (two dead
    nodes), the same degraded scenario with the chunked read pipeline
    (ISSUE 7, ``chunks=4`` at a slow decode so the overlap is visible),
    and under the same repair storm at weighted vs equal sharing — each
    regime on a fresh identically-seeded system.  Pins the whole
    :meth:`~repro.workload.serving.ServeResult.summary` (latency
    percentiles included: they are simulated time, never wall clock).
    """
    from repro.cluster.node import Node
    from repro.cluster.topology import Cluster
    from repro.ec.rs import RSCode
    from repro.system.coordinator import Coordinator
    from repro.system.request import RepairRequest
    from repro.workload import ServingPlane, WorkloadSpec

    spec = WorkloadSpec(
        n_objects=6, object_bytes=2 * 4 * 4096, duration_s=5.0,
        rate_ops_s=6.0, read_fraction=0.85, write_bytes=256, seed=2023,
    )

    def build(kill=0, fg_weight=4.0, chunks=1, decode_mbps=1024.0):
        coord = Coordinator(
            Cluster([Node(i, 100.0, 100.0) for i in range(12)]),
            RSCode(4, 2), block_bytes=4096, block_size_mb=32.0,
            rng=2023, heartbeat_timeout=5.0,
        )
        for j in range(4):
            coord.add_spare(Node(12 + j, 100.0, 100.0))
        plane = ServingPlane(
            coord, spec, foreground_weight=fg_weight,
            chunks=chunks, decode_mbps=decode_mbps,
        )
        plane.provision()
        if kill:
            sid0 = coord.files[spec.object_name(0)][0][0]
            stripe = next(s for s in coord.layout if s.stripe_id == sid0)
            for v in stripe.placement[:kill]:
                coord.crash_node(v)
        return plane

    storm = lambda w=None: (  # noqa: E731
        RepairRequest(scheme="hmbr", batched=True, priority="background")
        if w is None
        else RepairRequest(scheme="hmbr", batched=True, weight=w),
    )
    regimes = {
        "healthy": build().run().summary(),
        "degraded": build(kill=2).run().summary(),
        "pipelined": build(kill=2, chunks=4, decode_mbps=16.0).run().summary(),
        "storm_weighted": build(kill=2).run(repair=storm()).summary(),
        "storm_equal": build(kill=2, fg_weight=1.0).run(repair=storm(1.0)).summary(),
    }
    return canonical_json(regimes)


def gen_reliability() -> str:
    """A small deterministic durability run per scheme (ISSUE 8).

    Calibrated timing on a pocket cluster with rates aggressive enough
    that losses occur within the horizon, so the golden pins the whole
    chain — engine calibration points, the seeded event stream's loss
    accounting, Wilson-bounded nines, and the cross-scheme ordering — as
    plain numbers.  Everything is simulated time; no wall clock feeds in.
    """
    import dataclasses

    from repro.reliability import ReliabilitySimulator, ReliabilitySpec

    base = ReliabilitySpec(
        k=4, m=2, n_nodes=16, rack_size=4, n_spares=4, n_stripes=300,
        node_mttf_hours=2000.0, burst_rate_per_year=12.0,
        lse_rate_per_node_year=10.0, scrub_interval_hours=500.0,
        horizon_years=2.0, n_trials=2,
    )
    out = {}
    for scheme in ("cr", "ir", "hmbr"):
        rep = ReliabilitySimulator(
            dataclasses.replace(base, scheme=scheme)
        ).run()
        out[scheme] = {
            "summary": rep.summary(),
            "calibration": rep.calibration,
            "mttdl_years": rep.mttdl_years,
        }
    return canonical_json(out)


GENERATORS = {
    "exp1": gen_exp1,
    "exp5": gen_exp5,
    "exp6": gen_exp6,
    "reliability": gen_reliability,
    "serving": gen_serving,
}


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("names", nargs="*", help="fixtures to regenerate (default: all)")
    ap.add_argument("--check", action="store_true", help="verify committed goldens instead of rewriting")
    args = ap.parse_args(argv)
    unknown = [n for n in args.names if n not in GENERATORS]
    if unknown:
        ap.error(f"unknown fixture(s) {unknown}; choose from {sorted(GENERATORS)}")
    names = args.names or sorted(GENERATORS)
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    stale = []
    for name in names:
        text = GENERATORS[name]()
        path = GOLDEN_DIR / f"{name}.json"
        if args.check:
            if not path.exists() or path.read_text() != text:
                stale.append(name)
                print(f"STALE: {path.relative_to(REPO)}")
            else:
                print(f"ok: {path.relative_to(REPO)}")
        else:
            path.write_text(text)
            print(f"wrote {path.relative_to(REPO)} ({len(text)} bytes)")
    if stale:
        print(f"\n{len(stale)} stale golden(s); regenerate with: PYTHONPATH=src python tools/regen_goldens.py")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
